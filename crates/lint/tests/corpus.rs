//! Fixture-corpus test: every lint L1–L10 has a bad/good pair under
//! `tests/fixtures/`. The bad file must fire *exactly* its lint (no
//! bycatch from the other passes), the good file must be clean. The
//! fixtures double as living documentation of each rule — `walk`
//! skips the `fixtures/` directory, so they never leak into the real
//! workspace scan.

use ktg_lint::lints::atomics::Allowlist;
use ktg_lint::{analyze, parser, Lint, SourceFile};
use std::collections::BTreeSet;
use std::path::Path;

/// One lint's fixture pair: its id, the fixture directory, and the
/// synthetic workspace-relative path that puts the file in the right
/// lint scope (lib code, crate root, or solver entry file).
const CASES: [(&str, &str, &str); 10] = [
    ("L1", "l1", "crates/demo/Cargo.toml"),
    ("L2", "l2", "crates/demo/src/fixture.rs"),
    ("L3", "l3", "crates/demo/src/fixture.rs"),
    ("L4", "l4", "crates/demo/src/fixture.rs"),
    ("L5", "l5", "crates/demo/src/lib.rs"),
    ("L6", "l6", "crates/demo/src/fixture.rs"),
    ("L7", "l7", "crates/demo/src/fixture.rs"),
    ("L8", "l8", "crates/demo/src/fixture.rs"),
    ("L9", "l9", "crates/demo/src/fixture.rs"),
    ("L10", "l10", "crates/core/src/bb_fixture.rs"),
];

fn read_fixture(dir: &str, file: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(dir).join(file);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

/// Runs the full analyzer over one fixture file. Rust fixtures go in as
/// sources, the L1 manifest fixture as a manifest. `allow` covers the
/// L8 good fixture; everything else runs against an empty allowlist.
fn run(lint: Lint, relpath: &str, text: String, allow: &Allowlist) -> Vec<ktg_lint::Finding> {
    let file = SourceFile { path: relpath.to_string(), text };
    if lint == Lint::RegistryDep {
        analyze(&[], &[file], allow)
    } else {
        analyze(&[file], &[], allow)
    }
}

#[test]
fn every_lint_has_a_fixture_case() {
    let covered: BTreeSet<&str> = CASES.iter().map(|(id, _, _)| *id).collect();
    for lint in ktg_lint::lints::ALL_LINTS {
        assert!(covered.contains(lint.id()), "no fixture case for {}", lint.id());
    }
    assert_eq!(covered.len(), ktg_lint::lints::ALL_LINTS.len());
}

#[test]
fn bad_fixtures_fire_exactly_their_lint() {
    for (id, dir, relpath) in CASES {
        let lint = Lint::from_id(id).expect("known lint id");
        let file = if lint == Lint::RegistryDep { "bad.toml" } else { "bad.rs" };
        let findings = run(lint, relpath, read_fixture(dir, file), &Allowlist::default());
        assert!(!findings.is_empty(), "{dir}/{file} fired nothing");
        let fired: BTreeSet<Lint> = findings.iter().map(|f| f.lint).collect();
        assert_eq!(
            fired,
            BTreeSet::from([lint]),
            "{dir}/{file} must fire exactly {id}: {findings:#?}"
        );
        for f in &findings {
            assert_eq!(f.path, relpath);
            assert!(f.line > 0, "{dir}/{file}: finding without a line: {f}");
            assert!(!f.snippet.is_empty(), "{dir}/{file}: finding without a snippet: {f}");
            assert_eq!(f.fingerprint.len(), 16, "{dir}/{file}: malformed fingerprint: {f}");
        }
    }
}

#[test]
fn good_fixtures_are_clean() {
    for (id, dir, relpath) in CASES {
        let lint = Lint::from_id(id).expect("known lint id");
        let file = if lint == Lint::RegistryDep { "good.toml" } else { "good.rs" };
        let text = read_fixture(dir, file);
        // The L8 good fixture demonstrates allowlist coverage: the same
        // audited site passes once the committed allowlist names it.
        let allow = if lint == Lint::AtomicOrdering {
            let paths = vec![relpath.to_string()];
            let asts = vec![parser::parse(&text)];
            Allowlist::collect(&paths, &asts)
        } else {
            Allowlist::default()
        };
        let findings = run(lint, relpath, text, &allow);
        assert!(findings.is_empty(), "{dir}/{file} must be clean: {findings:#?}");
    }
}

#[test]
fn bad_fixture_fingerprints_are_stable_across_unrelated_edits() {
    // Prepending a comment shifts every line; the fingerprint (path +
    // normalized snippet) must survive, or baselines would churn.
    let (id, dir, relpath) = CASES[1]; // L2
    let lint = Lint::from_id(id).expect("known lint id");
    let text = read_fixture(dir, "bad.rs");
    let shifted = format!("// an unrelated leading comment\n{text}");
    let a = run(lint, relpath, text, &Allowlist::default());
    let b = run(lint, relpath, shifted, &Allowlist::default());
    let fp = |fs: &[ktg_lint::Finding]| -> BTreeSet<String> {
        fs.iter().map(|f| f.fingerprint.clone()).collect()
    };
    assert_eq!(fp(&a), fp(&b), "line shifts must not change fingerprints");
    assert_ne!(a[0].line, b[0].line, "the line itself did move");
}

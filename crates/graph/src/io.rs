//! Edge-list text I/O in the SNAP format used by the paper's datasets.
//!
//! The evaluation graphs (Gowalla, Brightkite, Flickr, Twitter, DBLP) are
//! distributed as whitespace-separated `u v` lines with `#`-prefixed
//! comments. [`read_edge_list`] accepts exactly that, remapping arbitrary
//! (possibly sparse) raw ids onto the dense `0..n` vertex space and
//! returning the mapping so keyword files can be aligned.

use crate::csr::{CsrGraph, GraphBuilder};
use ktg_common::{FxHashMap, KtgError, Result, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// The result of parsing an edge list: the graph plus the raw-id ↔ dense-id
/// mapping.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The parsed graph on dense vertex ids.
    pub graph: CsrGraph,
    /// `raw_ids[dense.index()]` is the id that appeared in the file.
    pub raw_ids: Vec<u64>,
    /// Raw file id → dense id.
    pub id_map: FxHashMap<u64, VertexId>,
}

/// Reads a SNAP-style edge list: one `u v` pair per line, `#` comments and
/// blank lines ignored.
///
/// Two id regimes:
///
/// * Files written by [`write_edge_list`] start with a
///   `# ktg edge list: N vertices, …` header. Ids are then taken as
///   **already dense** in `0..N` (identity mapping), which preserves
///   isolated vertices and keeps companion keyword files aligned.
/// * Raw SNAP files have no such header; arbitrary u64 ids are densified
///   in first-appearance order and the mapping is returned.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph> {
    let reader = BufReader::new(reader);
    let mut id_map: FxHashMap<u64, VertexId> = FxHashMap::default();
    let mut raw_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut declared_vertices: Option<usize> = None;

    let intern = |raw: u64,
                  raw_ids: &mut Vec<u64>,
                  id_map: &mut FxHashMap<u64, VertexId>|
     -> Result<VertexId> {
        if let Some(&id) = id_map.get(&raw) {
            return Ok(id);
        }
        let next = raw_ids.len();
        if next > u32::MAX as usize {
            return Err(KtgError::input(
                "edge list exceeds the u32 vertex id space (too many distinct vertices)",
            ));
        }
        let id = VertexId(next as u32);
        raw_ids.push(raw);
        id_map.insert(raw, id);
        Ok(id)
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            if lineno == 0 {
                declared_vertices = parse_ktg_header(trimmed);
                if let Some(n) = declared_vertices {
                    // Every id below `n` must fit a `VertexId`; rejecting the
                    // header up front keeps the per-line casts truncation-free.
                    if n > u32::MAX as usize {
                        return Err(KtgError::input(format!(
                            "declared vertex count {n} exceeds the u32 vertex id space"
                        )));
                    }
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64> {
            tok.ok_or_else(|| KtgError::input(format!("line {}: missing field", lineno + 1)))?
                .parse::<u64>()
                .map_err(|e| KtgError::input(format!("line {}: {e}", lineno + 1)))
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        if let Some(n) = declared_vertices {
            // Dense regime: validate and use ids directly.
            let check = |raw: u64| -> Result<VertexId> {
                if raw as usize >= n {
                    return Err(KtgError::input(format!(
                        "line {}: vertex {raw} out of declared range {n}",
                        lineno + 1
                    )));
                }
                Ok(VertexId(raw as u32))
            };
            edges.push((check(u)?, check(v)?));
        } else {
            let du = intern(u, &mut raw_ids, &mut id_map)?;
            let dv = intern(v, &mut raw_ids, &mut id_map)?;
            edges.push((du, dv));
        }
    }

    let n = declared_vertices.unwrap_or(raw_ids.len());
    if declared_vertices.is_some() {
        raw_ids = (0..n as u64).collect();
        id_map = raw_ids.iter().map(|&r| (r, VertexId(r as u32))).collect();
    }
    let mut builder = GraphBuilder::with_edge_capacity(n, edges.len());
    for (u, v) in edges {
        builder.add_edge(u, v)?;
    }
    Ok(LoadedGraph { graph: builder.build(), raw_ids, id_map })
}

/// Parses the `# ktg edge list: N vertices, …` header, if present.
fn parse_ktg_header(line: &str) -> Option<usize> {
    let rest = line.strip_prefix("# ktg edge list:")?;
    let count = rest.split_whitespace().next()?;
    count.parse().ok()
}

/// Writes a graph as a SNAP-style edge list (dense ids, one edge per line,
/// canonical `u < v` orientation) with a leading comment header.
pub fn write_edge_list<A: crate::Adjacency, W: Write>(graph: &A, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# ktg edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for u in ktg_common::id::vertex_range(graph.num_vertices()) {
        let mut err = None;
        graph.for_each_neighbor(u, |v| {
            if u < v && err.is_none() {
                if let Err(e) = writeln!(w, "{u}\t{v}") {
                    err = Some(e);
                }
            }
        });
        if let Some(e) = err {
            return Err(e.into());
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_file() {
        let text = "# comment\n10 20\n20 30\n\n10 30\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.raw_ids, vec![10, 20, 30]);
        assert_eq!(loaded.id_map[&20], VertexId(1));
    }

    #[test]
    fn duplicate_and_reverse_edges_merge() {
        let text = "1 2\n2 1\n1 2\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
    }

    #[test]
    fn tabs_and_mixed_whitespace() {
        let text = "5\t6\n6  7\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 2);
    }

    #[test]
    fn malformed_line_is_error() {
        assert!(read_edge_list("1 x\n".as_bytes()).is_err());
        assert!(read_edge_list("1\n".as_bytes()).is_err());
    }

    #[test]
    fn roundtrip() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(loaded.graph, g);
    }

    #[test]
    fn roundtrip_preserves_isolated_vertices_and_ids() {
        // Vertex 4 is isolated; vertex ids must survive the roundtrip
        // unchanged so companion keyword files stay aligned.
        let g = CsrGraph::from_edges(5, &[(3, 1), (1, 2)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(loaded.graph, g);
        assert_eq!(loaded.graph.num_vertices(), 5);
        assert_eq!(loaded.id_map[&3], VertexId(3));
    }

    #[test]
    fn declared_header_rejects_out_of_range() {
        let text = "# ktg edge list: 3 vertices, 1 edges\n0 9\n";
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn header_parsing() {
        assert_eq!(parse_ktg_header("# ktg edge list: 42 vertices, 7 edges"), Some(42));
        assert_eq!(parse_ktg_header("# some other comment"), None);
        assert_eq!(parse_ktg_header(""), None);
    }

    #[test]
    fn oversized_declared_header_rejected() {
        // 5e9 vertices cannot fit the u32 id space: the header itself must
        // be rejected instead of letting `raw as u32` truncate ids later.
        let text = "# ktg edge list: 5000000000 vertices, 1 edges\n0 4294967296\n";
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn empty_input_empty_graph() {
        let loaded = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 0);
        assert_eq!(loaded.graph.num_edges(), 0);
    }
}

//! Delta + varint compressed adjacency.
//!
//! [`CompressedCsr`] is the second [`Adjacency`] implementation behind
//! the trait: the same sorted, duplicate-free, symmetric neighbor lists
//! as [`CsrGraph`], stored as LEB128 varints of the gaps between
//! consecutive neighbors instead of raw `u32`s. Sorted lists of a
//! sparse graph have small gaps, so most deltas fit one or two bytes —
//! on social-shaped graphs the byte stream plus its skip tables is
//! substantially smaller than the flat arrays (the `scale` bench
//! asserts exactly that).
//!
//! ## Block layout
//!
//! Each neighbor list is cut into blocks of [`BLOCK_LEN`] entries. A
//! block starts with its first neighbor as a raw little-endian `u32`
//! (a decode anchor — no carried state between blocks), followed by
//! LEB128 varints of `delta - 1` for the remaining entries (`delta ≥ 1`
//! because lists are strictly increasing, so the common gap of 1
//! encodes as a zero byte). Three side tables make blocks addressable
//! without decoding their predecessors:
//!
//! * `block_index[v] .. block_index[v + 1]` — the global block range of
//!   vertex `v` (prefix sums of `ceil(degree / BLOCK_LEN)`);
//! * `block_off[b]` — the byte offset of block `b` in the stream;
//! * `block_first[b]` — the first neighbor value in block `b`, so
//!   [`CompressedCsr::has_edge`] binary-searches blocks and decodes at
//!   most one.
//!
//! ## Word-at-a-time decode
//!
//! The BFS hot path ([`Adjacency::for_each_neighbor`]) reads the byte
//! stream eight bytes at a time: when a `u64` word has no continuation
//! bits (`word & 0x8080…80 == 0`), all eight bytes are complete
//! one-byte varints and decode in a straight-line loop with no per-edge
//! branching — the common case once gaps are small. Words containing a
//! continuation bit fall back to per-byte LEB128. The byte stream is
//! padded with eight trailing zeros so the word reads never run off the
//! end (everything stays safe code).

use crate::csr::{Adjacency, CsrGraph, GraphBuilder};
use ktg_common::{KtgError, Result, VertexId};

/// Neighbors per block. 64 keeps skip tables small while letting the
/// word loop cover a whole block in at most eight reads.
pub const BLOCK_LEN: usize = 64;

/// Zero padding appended to the byte stream so the 8-byte word reads in
/// the decode loop stay in bounds without per-read length checks.
const PAD: usize = 8;

/// All-continuation-bit mask: a word with none of these set is eight
/// complete one-byte varints.
const CONT_MASK: u64 = 0x8080_8080_8080_8080;

/// Borrowed views of the five storage arrays plus the edge count, in
/// struct-field order: `(degrees, block_index, block_off, block_first,
/// bytes, num_edges)`. What [`CompressedCsr::raw_parts`] hands the
/// persistence layer and [`CompressedCsr::from_raw_parts`] validates back.
pub type RawParts<'a> = (&'a [u32], &'a [u64], &'a [u64], &'a [u32], &'a [u8], u64);

/// An immutable undirected graph with delta+varint compressed neighbor
/// lists (module docs). Query results over a `CompressedCsr` are
/// byte-identical to the [`CsrGraph`] it was built from — only space
/// and decode cost differ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedCsr {
    /// Per-vertex degree (also the authoritative vertex count).
    degrees: Vec<u32>,
    /// Prefix sums of per-vertex block counts (`n + 1` entries).
    block_index: Vec<u64>,
    /// Byte offset of each block in `bytes` (`num_blocks + 1` entries).
    block_off: Vec<u64>,
    /// First neighbor value of each block (`num_blocks` entries).
    block_first: Vec<u32>,
    /// The varint stream, padded with [`PAD`] trailing zeros.
    bytes: Vec<u8>,
    /// Undirected edge count (half the stored entries).
    num_edges: u64,
}

impl CompressedCsr {
    /// Compresses a flat CSR graph. The inverse is [`Self::to_csr`].
    pub fn from_csr(graph: &CsrGraph) -> Self {
        let mut enc = Encoder::new(graph.num_vertices());
        for v in graph.vertices() {
            enc.push_list(graph.neighbors(v));
        }
        enc.finish()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges as usize
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v.index()] as usize
    }

    /// Decodes one block (`b` global, holding `len` entries) through `f`.
    #[inline]
    fn decode_block<F: FnMut(VertexId)>(&self, b: usize, len: usize, f: &mut F) {
        debug_assert!((1..=BLOCK_LEN).contains(&len));
        let mut pos = self.block_off[b] as usize;
        let first = read_u32(&self.bytes, pos);
        pos += 4;
        debug_assert_eq!(first, self.block_first[b]);
        f(VertexId(first));
        let mut prev = first;
        let mut remaining = len - 1;
        while remaining >= 8 {
            let word = read_u64(&self.bytes, pos);
            if word & CONT_MASK == 0 {
                // Eight complete one-byte varints: no per-edge branching.
                let bytes = word.to_le_bytes();
                for &d in &bytes {
                    prev += u32::from(d) + 1;
                    f(VertexId(prev));
                }
                pos += 8;
                remaining -= 8;
            } else {
                let (delta, used) = decode_varint(&self.bytes, pos);
                prev += delta + 1;
                f(VertexId(prev));
                pos += used;
                remaining -= 1;
            }
        }
        while remaining > 0 {
            let (delta, used) = decode_varint(&self.bytes, pos);
            prev += delta + 1;
            f(VertexId(prev));
            pos += used;
            remaining -= 1;
        }
    }

    /// Calls `f` for each neighbor of `v` in ascending order.
    #[inline]
    pub fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        let i = v.index();
        let mut remaining = self.degrees[i] as usize;
        let (b0, b1) = (self.block_index[i] as usize, self.block_index[i + 1] as usize);
        for b in b0..b1 {
            let len = remaining.min(BLOCK_LEN);
            self.decode_block(b, len, &mut f);
            remaining -= len;
        }
        debug_assert_eq!(remaining, 0);
    }

    /// The decoded neighbor list of `v` (allocates; tests and one-off
    /// callers only — hot paths use [`Self::for_each_neighbor`]).
    pub fn neighbors_vec(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_neighbor(v, |w| out.push(w));
        out
    }

    /// Whether the undirected edge `{u, v}` exists. Routes to the
    /// smaller-degree endpoint, binary-searches `block_first` to pick
    /// the one candidate block, and decodes at most [`BLOCK_LEN`]
    /// entries.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        let i = a.index();
        let (b0, b1) = (self.block_index[i] as usize, self.block_index[i + 1] as usize);
        if b0 == b1 {
            return false;
        }
        // Last block whose first value is <= target; earlier blocks only
        // hold smaller values, later ones only larger.
        let target = b.0;
        let firsts = &self.block_first[b0..b1];
        let k = firsts.partition_point(|&first| first <= target);
        if k == 0 {
            return false;
        }
        let blk = b0 + k - 1;
        let before = (blk - b0) * BLOCK_LEN;
        let len = (self.degrees[i] as usize - before).min(BLOCK_LEN);
        let mut found = false;
        self.decode_block(blk, len, &mut |w| found |= w == b);
        found
    }

    /// Decompresses back into a flat [`CsrGraph`].
    pub fn to_csr(&self) -> CsrGraph {
        let mut builder = GraphBuilder::with_edge_capacity(self.num_vertices(), self.num_edges());
        for i in 0..self.num_vertices() {
            let v = VertexId::new(i);
            self.for_each_neighbor(v, |w| {
                if v < w {
                    builder.add_edge_unchecked(v, w);
                }
            });
        }
        builder.build()
    }

    /// Approximate heap usage in bytes (stream + skip tables).
    pub fn heap_bytes(&self) -> usize {
        self.degrees.capacity() * std::mem::size_of::<u32>()
            + self.block_index.capacity() * std::mem::size_of::<u64>()
            + self.block_off.capacity() * std::mem::size_of::<u64>()
            + self.block_first.capacity() * std::mem::size_of::<u32>()
            + self.bytes.capacity()
    }

    /// The raw parts `(degrees, block_index, block_off, block_first,
    /// bytes, num_edges)`, for bulk persistence.
    pub fn raw_parts(&self) -> RawParts<'_> {
        (
            &self.degrees,
            &self.block_index,
            &self.block_off,
            &self.block_first,
            &self.bytes,
            self.num_edges,
        )
    }

    /// Reassembles from bulk-loaded parts, validating the structural
    /// invariants in O(n + blocks): consistent table lengths, monotonic
    /// offsets, block counts matching degrees, stream padding present.
    /// List contents are re-validated by decoding only in debug builds;
    /// the persistence layer's checksum guards byte corruption.
    ///
    /// # Errors
    /// Returns [`KtgError::InvalidInput`] when any invariant fails.
    pub fn from_raw_parts(
        degrees: Vec<u32>,
        block_index: Vec<u64>,
        block_off: Vec<u64>,
        block_first: Vec<u32>,
        bytes: Vec<u8>,
        num_edges: u64,
    ) -> Result<Self> {
        let n = degrees.len();
        if block_index.len() != n + 1 || block_index[0] != 0 {
            return Err(KtgError::input("compressed CSR block index must have n + 1 entries"));
        }
        let total_blocks = block_index[n] as usize;
        if block_off.len() != total_blocks + 1 || block_first.len() != total_blocks {
            return Err(KtgError::input(format!(
                "compressed CSR has {total_blocks} blocks but {} offsets / {} firsts",
                block_off.len(),
                block_first.len()
            )));
        }
        let mut half_edges = 0u64;
        for (i, &d) in degrees.iter().enumerate() {
            let blocks = (d as usize).div_ceil(BLOCK_LEN) as u64;
            if block_index[i + 1] - block_index[i] != blocks {
                return Err(KtgError::input(format!(
                    "vertex {i} has degree {d} but {} blocks",
                    block_index[i + 1] - block_index[i]
                )));
            }
            half_edges += u64::from(d);
        }
        if half_edges != num_edges * 2 {
            return Err(KtgError::input(format!(
                "degree sum {half_edges} does not match 2 x {num_edges} edges"
            )));
        }
        if block_off.windows(2).any(|w| w[0] > w[1]) {
            return Err(KtgError::input("compressed CSR block offsets are not monotonic"));
        }
        if block_off[total_blocks] as usize + PAD != bytes.len() {
            return Err(KtgError::input(format!(
                "compressed CSR stream length {} does not match final offset {} + padding",
                bytes.len(),
                block_off[total_blocks]
            )));
        }
        let graph = CompressedCsr { degrees, block_index, block_off, block_first, bytes, num_edges };
        #[cfg(debug_assertions)]
        graph.check_invariants();
        Ok(graph)
    }

    #[cfg(debug_assertions)]
    fn check_invariants(&self) {
        for i in 0..self.num_vertices() {
            let v = VertexId::new(i);
            let list = self.neighbors_vec(v);
            debug_assert_eq!(list.len(), self.degree(v));
            debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "sorted+dedup at {v}");
            debug_assert!(!list.contains(&v), "self-loop at {v}");
            debug_assert!(
                list.last().is_none_or(|w| w.index() < self.num_vertices()),
                "neighbor out of range at {v}"
            );
        }
    }
}

impl Adjacency for CompressedCsr {
    #[inline]
    fn num_vertices(&self) -> usize {
        CompressedCsr::num_vertices(self)
    }
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CompressedCsr::degree(self, v)
    }
    #[inline]
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, f: F) {
        CompressedCsr::for_each_neighbor(self, v, f)
    }
    #[inline]
    fn num_edges(&self) -> usize {
        CompressedCsr::num_edges(self)
    }
}

#[inline]
fn read_u32(bytes: &[u8], pos: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[pos..pos + 4]);
    u32::from_le_bytes(buf)
}

#[inline]
fn read_u64(bytes: &[u8], pos: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[pos..pos + 8]);
    u64::from_le_bytes(buf)
}

/// Decodes one LEB128 varint, returning `(value, bytes_consumed)`.
#[inline]
fn decode_varint(bytes: &[u8], pos: usize) -> (u32, usize) {
    let mut value = 0u32;
    let mut shift = 0u32;
    let mut used = 0usize;
    loop {
        let b = bytes[pos + used];
        value |= u32::from(b & 0x7F) << shift;
        used += 1;
        if b & 0x80 == 0 {
            return (value, used);
        }
        shift += 7;
    }
}

#[inline]
fn encode_varint(out: &mut Vec<u8>, mut value: u32) {
    while value >= 0x80 {
        out.push((value as u8) | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Streaming per-vertex encoder behind [`CompressedCsr::from_csr`] and
/// [`crate::streaming::StreamingGraphBuilder::finish_compressed`]: feed
/// each vertex's sorted list in vertex order, then [`Encoder::finish`].
pub(crate) struct Encoder {
    degrees: Vec<u32>,
    block_index: Vec<u64>,
    block_off: Vec<u64>,
    block_first: Vec<u32>,
    bytes: Vec<u8>,
    half_edges: u64,
}

impl Encoder {
    pub(crate) fn new(num_vertices: usize) -> Self {
        let mut block_index = Vec::with_capacity(num_vertices + 1);
        block_index.push(0);
        Encoder {
            degrees: Vec::with_capacity(num_vertices),
            block_index,
            block_off: vec![0],
            block_first: Vec::new(),
            bytes: Vec::new(),
            half_edges: 0,
        }
    }

    /// Appends the next vertex's sorted, deduplicated neighbor list.
    pub(crate) fn push_list(&mut self, list: &[VertexId]) {
        debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "list must be sorted+dedup");
        self.degrees.push(list.len() as u32);
        self.half_edges += list.len() as u64;
        for block in list.chunks(BLOCK_LEN) {
            self.block_first.push(block[0].0);
            self.bytes.extend_from_slice(&block[0].0.to_le_bytes());
            let mut prev = block[0].0;
            for &w in &block[1..] {
                encode_varint(&mut self.bytes, w.0 - prev - 1);
                prev = w.0;
            }
            self.block_off.push(self.bytes.len() as u64);
        }
        self.block_index.push(self.block_first.len() as u64);
    }

    pub(crate) fn finish(mut self) -> CompressedCsr {
        self.bytes.extend_from_slice(&[0u8; PAD]);
        CompressedCsr {
            degrees: self.degrees,
            block_index: self.block_index,
            block_off: self.block_off,
            block_first: self.block_first,
            bytes: self.bytes,
            num_edges: self.half_edges / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktg_common::SeededRng;

    fn random_graph(n: u32, p: f64, seed: u64) -> CsrGraph {
        let mut rng = SeededRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        CsrGraph::from_edges(n as usize, &edges).unwrap()
    }

    #[test]
    fn roundtrips_through_compression() {
        for (n, p, seed) in [(0, 0.0, 1), (1, 0.0, 2), (40, 0.15, 3), (120, 0.03, 4)] {
            let flat = random_graph(n, p, seed);
            let compressed = CompressedCsr::from_csr(&flat);
            assert_eq!(compressed.num_vertices(), flat.num_vertices());
            assert_eq!(compressed.num_edges(), flat.num_edges());
            for v in flat.vertices() {
                assert_eq!(compressed.degree(v), flat.degree(v), "{v}");
                assert_eq!(compressed.neighbors_vec(v), flat.neighbors(v), "{v}");
            }
            assert_eq!(compressed.to_csr(), flat);
        }
    }

    #[test]
    fn multi_block_lists_decode_across_boundaries() {
        // A star vertex with degree well past several block boundaries,
        // including gaps big enough to need multi-byte varints.
        let n = 70_000u32;
        let edges: Vec<(u32, u32)> =
            (1..n).step_by(13).map(|v| (0, v)).chain([(0, n - 1)]).collect();
        let flat = CsrGraph::from_edges(n as usize, &edges).unwrap();
        assert!(flat.degree(VertexId(0)) > 3 * BLOCK_LEN);
        let compressed = CompressedCsr::from_csr(&flat);
        assert_eq!(compressed.neighbors_vec(VertexId(0)), flat.neighbors(VertexId(0)));
        assert_eq!(compressed.to_csr(), flat);
    }

    #[test]
    fn has_edge_agrees_with_flat() {
        let flat = random_graph(80, 0.1, 0xC0FFEE);
        let compressed = CompressedCsr::from_csr(&flat);
        for u in flat.vertices() {
            for v in flat.vertices() {
                assert_eq!(
                    compressed.has_edge(u, v),
                    flat.has_edge(u, v),
                    "has_edge({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn word_fast_path_handles_dense_runs() {
        // Banded graph: each vertex adjacent to the 32 ids on either side,
        // so every delta is 1 and the 8-at-a-time word loop carries whole
        // blocks. Average degree ~64 also puts this where compression wins.
        let n = 600u32;
        let edges: Vec<(u32, u32)> =
            (0..n).flat_map(|u| (u + 1..(u + 33).min(n)).map(move |v| (u, v))).collect();
        let flat = CsrGraph::from_edges(n as usize, &edges).unwrap();
        let compressed = CompressedCsr::from_csr(&flat);
        for v in flat.vertices() {
            assert_eq!(compressed.neighbors_vec(v), flat.neighbors(v));
        }
        assert!(compressed.heap_bytes() < flat.heap_bytes());
    }

    #[test]
    fn raw_parts_roundtrip_and_validation() {
        let flat = random_graph(60, 0.12, 99);
        let compressed = CompressedCsr::from_csr(&flat);
        let (d, bi, bo, bf, by, m) = compressed.raw_parts();
        let rebuilt = CompressedCsr::from_raw_parts(
            d.to_vec(),
            bi.to_vec(),
            bo.to_vec(),
            bf.to_vec(),
            by.to_vec(),
            m,
        )
        .unwrap();
        assert_eq!(rebuilt, compressed);

        // Structural corruption is rejected, never a panic.
        assert!(CompressedCsr::from_raw_parts(
            d.to_vec(),
            bi[..bi.len() - 1].to_vec(),
            bo.to_vec(),
            bf.to_vec(),
            by.to_vec(),
            m,
        )
        .is_err());
        assert!(CompressedCsr::from_raw_parts(
            d.to_vec(),
            bi.to_vec(),
            bo.to_vec(),
            bf.to_vec(),
            by[..by.len() - 1].to_vec(),
            m,
        )
        .is_err());
        let mut wrong_deg = d.to_vec();
        wrong_deg[0] += 1;
        assert!(CompressedCsr::from_raw_parts(
            wrong_deg,
            bi.to_vec(),
            bo.to_vec(),
            bf.to_vec(),
            by.to_vec(),
            m,
        )
        .is_err());
    }

    #[test]
    fn adjacency_trait_dispatch() {
        let flat = random_graph(30, 0.2, 5);
        let compressed = CompressedCsr::from_csr(&flat);
        fn degree_sum<A: Adjacency>(g: &A) -> usize {
            let mut sum = 0;
            for i in 0..g.num_vertices() {
                sum += g.degree(VertexId::new(i));
            }
            sum
        }
        assert_eq!(degree_sum(&compressed), degree_sum(&flat));
        assert_eq!(Adjacency::num_edges(&compressed), flat.num_edges());
    }
}

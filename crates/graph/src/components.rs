//! Connected-component labelling.
//!
//! The NLRNL index (paper §V-B) stores, for each vertex, its hop neighbors
//! at levels `1..=c-1` and the *reverse* neighbors at levels `> c` — but not
//! level `c` itself. A membership miss in every stored list therefore means
//! "distance is exactly c" **or** "unreachable"; component ids disambiguate
//! the two in O(1). They are also handy for dataset sanity checks.

use crate::bfs::{bfs_levels, BfsScratch};
use crate::csr::Adjacency;
use ktg_common::VertexId;

/// Component labelling of a graph: `label[v]` identifies `v`'s connected
/// component; labels are dense in `0..num_components`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    labels: Vec<u32>,
    count: usize,
    sizes: Vec<usize>,
}

impl Components {
    /// Labels the components of `graph` by repeated BFS (O(n + m)).
    pub fn compute<A: Adjacency>(graph: &A) -> Self {
        let n = graph.num_vertices();
        let mut labels = vec![u32::MAX; n];
        let mut sizes = Vec::new();
        let mut scratch = BfsScratch::new(n);
        let mut count = 0u32;
        for v in 0..n {
            let v = VertexId::new(v);
            if labels[v.index()] != u32::MAX {
                continue;
            }
            let label = count;
            count += 1;
            labels[v.index()] = label;
            let mut size = 1usize;
            bfs_levels(graph, v, usize::MAX, &mut scratch, |u, _| {
                labels[u.index()] = label;
                size += 1;
            });
            sizes.push(size);
        }
        Components { labels, count: count as usize, sizes }
    }

    /// Reconstructs a labelling from raw labels (used when deserializing
    /// structures that embed component ids). Labels must be dense in
    /// `0..count` — anything else panics in debug builds.
    pub fn from_labels(labels: Vec<u32>) -> Self {
        let count = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        let mut sizes = vec![0usize; count];
        for &l in &labels {
            debug_assert!((l as usize) < count);
            sizes[l as usize] += 1;
        }
        debug_assert!(sizes.iter().all(|&s| s > 0), "labels not dense");
        Components { labels, count, sizes }
    }

    /// The component label of `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> u32 {
        self.labels[v.index()]
    }

    /// Whether `u` and `v` lie in the same component (i.e. their distance is
    /// finite).
    #[inline]
    pub fn same_component(&self, u: VertexId, v: VertexId) -> bool {
        self.labels[u.index()] == self.labels[v.index()]
    }

    /// Number of components.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Size (vertex count) of component `label`.
    #[inline]
    pub fn size(&self, label: u32) -> usize {
        self.sizes[label as usize]
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Approximate heap usage in bytes (counted into NLRNL space accounting).
    pub fn heap_bytes(&self) -> usize {
        self.labels.capacity() * std::mem::size_of::<u32>()
            + self.sizes.capacity() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    #[test]
    fn two_components_plus_isolated() {
        // {0,1,2} path, {3,4} edge, {5} isolated.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let c = Components::compute(&g);
        assert_eq!(c.count(), 3);
        assert!(c.same_component(VertexId(0), VertexId(2)));
        assert!(c.same_component(VertexId(3), VertexId(4)));
        assert!(!c.same_component(VertexId(0), VertexId(3)));
        assert!(!c.same_component(VertexId(4), VertexId(5)));
    }

    #[test]
    fn sizes_and_largest() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let c = Components::compute(&g);
        let mut sizes: Vec<_> = (0..c.count() as u32).map(|l| c.size(l)).collect();
        sizes.sort();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert_eq!(c.largest(), 3);
    }

    #[test]
    fn connected_graph_single_component() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let c = Components::compute(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.largest(), 4);
    }

    #[test]
    fn empty_graph_zero_components() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        let c = Components::compute(&g);
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest(), 0);
    }

    #[test]
    fn labels_are_dense() {
        let g = CsrGraph::from_edges(5, &[(1, 2)]).unwrap();
        let c = Components::compute(&g);
        let mut labels: Vec<_> = (0..5).map(|i| c.label(VertexId(i))).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels, (0..c.count() as u32).collect::<Vec<_>>());
    }
}

//! Compressed-sparse-row undirected graphs.
//!
//! [`CsrGraph`] stores neighbor lists in one contiguous array indexed by a
//! per-vertex offset table. Neighbor lists are sorted, enabling binary-search
//! adjacency tests and merge-style set operations in the indexes. The graph
//! is immutable after construction; mutation goes through
//! [`crate::DynamicGraph`].

use ktg_common::{KtgError, Result, VertexId};

/// Read access to an undirected graph's adjacency structure.
///
/// [`CsrGraph`], [`crate::CompressedCsr`], [`crate::GraphStore`] and
/// [`crate::DynamicGraph`] all implement this, so traversals (BFS,
/// component labelling) and index construction run over any
/// representation. Neighbor access is callback-based
/// ([`Adjacency::for_each_neighbor`]) rather than slice-based so that
/// compressed representations, which decode lists on the fly, fit
/// behind the same trait; implementations must visit neighbors in
/// strictly ascending vertex order (the invariant every flat list
/// already keeps), which is what makes traversal results identical
/// across representations.
pub trait Adjacency {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;
    /// Degree of `v`.
    fn degree(&self, v: VertexId) -> usize;
    /// Calls `f` once per neighbor of `v`, in ascending vertex order.
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, f: F);
    /// Number of undirected edges. The default sums degrees; concrete
    /// graphs override it with their O(1) count.
    fn num_edges(&self) -> usize {
        let mut half = 0usize;
        for v in ktg_common::id::vertex_range(self.num_vertices()) {
            half += self.degree(v);
        }
        half / 2
    }
}

impl<A: Adjacency + ?Sized> Adjacency for &A {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }
    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, f: F) {
        (**self).for_each_neighbor(v, f)
    }
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }
}

/// An immutable undirected graph in CSR form.
///
/// Invariants (established by [`GraphBuilder`] and checked in debug builds):
/// * neighbor lists are sorted and duplicate-free;
/// * no self-loops;
/// * symmetry: `v ∈ N(u)` iff `u ∈ N(v)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v.index()] .. offsets[v.index() + 1]` delimits `N(v)`.
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
}

impl CsrGraph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        debug_assert!(i + 1 < self.offsets.len(), "vertex {v} out of range");
        let (start, end) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        debug_assert!(
            start <= end && end <= self.neighbors.len(),
            "offset table corrupt at {v}: {start}..{end} of {}",
            self.neighbors.len()
        );
        let slice = &self.neighbors[start..end];
        debug_assert!(
            slice.windows(2).all(|w| w[0] < w[1]),
            "neighbor list of {v} is not sorted+deduplicated"
        );
        slice
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Whether the undirected edge `{u, v}` exists (binary search, O(log d)).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        // Probe the smaller list.
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates all vertices.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> {
        ktg_common::id::vertex_range(self.num_vertices())
    }

    /// Iterates every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Builds directly from an edge list (convenience for tests/examples).
    pub fn from_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Result<Self> {
        let mut b = GraphBuilder::new(num_vertices);
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v))?;
        }
        Ok(b.build())
    }

    /// Approximate heap usage in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u64>()
            + self.neighbors.capacity() * std::mem::size_of::<VertexId>()
    }

    /// The raw offset table (`n + 1` entries), for bulk persistence.
    pub fn raw_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw concatenated neighbor array, for bulk persistence.
    pub fn raw_neighbors(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Reassembles a graph from bulk-loaded parts, validating the CSR
    /// invariants in O(n + m): monotonic offsets covering the neighbor
    /// array, sorted duplicate-free lists, in-range ids, no self-loops.
    /// Symmetry is implied for data produced by [`Self::raw_offsets`] /
    /// [`Self::raw_neighbors`] and is only re-checked in debug builds —
    /// the persistence layer's checksum guards against corruption.
    ///
    /// # Errors
    /// Returns [`KtgError::InvalidInput`] when any invariant fails.
    pub fn from_sorted_parts(offsets: Vec<u64>, neighbors: Vec<VertexId>) -> Result<Self> {
        if offsets.is_empty() {
            return Err(KtgError::input("CSR offset table must have n + 1 entries"));
        }
        if offsets[0] != 0 || *offsets.last().unwrap_or(&0) != neighbors.len() as u64 {
            return Err(KtgError::input(format!(
                "CSR offsets must span 0..{} (got {}..{:?})",
                neighbors.len(),
                offsets[0],
                offsets.last()
            )));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(KtgError::input("CSR offset table is not monotonic"));
        }
        let n = offsets.len() - 1;
        let graph = CsrGraph { offsets, neighbors };
        for v in graph.vertices() {
            let i = v.index();
            let (s, e) = (graph.offsets[i] as usize, graph.offsets[i + 1] as usize);
            let list = &graph.neighbors[s..e];
            if list.windows(2).any(|w| w[0] >= w[1]) {
                return Err(KtgError::input(format!(
                    "neighbor list of {v} is not sorted+deduplicated"
                )));
            }
            if let Some(&last) = list.last() {
                if last.index() >= n {
                    return Err(KtgError::input(format!(
                        "neighbor {last} of {v} out of range for {n} vertices"
                    )));
                }
            }
            if list.binary_search(&v).is_ok() {
                return Err(KtgError::input(format!("self-loop at {v}")));
            }
        }
        #[cfg(debug_assertions)]
        graph.check_invariants();
        Ok(graph)
    }

    #[cfg(debug_assertions)]
    fn check_invariants(&self) {
        for u in self.vertices() {
            let ns = self.neighbors(u);
            debug_assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted+dedup");
            debug_assert!(!ns.contains(&u), "no self-loop at {u:?}");
            for &v in ns {
                debug_assert!(
                    self.neighbors(v).binary_search(&u).is_ok(),
                    "asymmetric edge ({u:?}, {v:?})"
                );
            }
        }
    }
}

impl Adjacency for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }
    #[inline]
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        for &w in CsrGraph::neighbors(self, v) {
            f(w);
        }
    }
    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }
}

/// Deduplicating builder for [`CsrGraph`].
///
/// Self-loops are silently dropped (social networks have no meaningful
/// self-friendship); parallel edges collapse to one.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    /// Directed half-edges; mirrored at build time.
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder { num_vertices, edges: Vec::new() }
    }

    /// Pre-allocates room for `n` edges.
    pub fn with_edge_capacity(num_vertices: usize, n: usize) -> Self {
        GraphBuilder { num_vertices, edges: Vec::with_capacity(n) }
    }

    /// Number of vertices the graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored.
    ///
    /// # Errors
    /// Returns [`KtgError::InvalidInput`] if either endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        if u.index() >= self.num_vertices || v.index() >= self.num_vertices {
            return Err(KtgError::input(format!(
                "edge ({u}, {v}) out of range for {} vertices",
                self.num_vertices
            )));
        }
        if u != v {
            // Canonicalize so dedup catches both orientations.
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            self.edges.push((a, b));
        }
        Ok(())
    }

    /// Adds the undirected edge `{u, v}` when both endpoints are known
    /// in range *by construction* — generators sampling from
    /// `0..num_vertices`, remappers emitting fresh dense ids. Out-of-range
    /// endpoints are a caller bug: checked in debug builds, skipped (with
    /// self-loops) in release, so the infallible callers need no `expect`.
    pub fn add_edge_unchecked(&mut self, u: VertexId, v: VertexId) {
        debug_assert!(
            u.index() < self.num_vertices && v.index() < self.num_vertices,
            "edge ({u}, {v}) out of range for {} vertices",
            self.num_vertices
        );
        if u != v && u.index() < self.num_vertices && v.index() < self.num_vertices {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            self.edges.push((a, b));
        }
    }

    /// Finalizes into a [`CsrGraph`]: O(m log m) for sort+dedup, then one
    /// counting pass.
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.num_vertices;
        let mut degree = vec![0u64; n];
        for &(a, b) in &self.edges {
            degree[a.index()] += 1;
            degree[b.index()] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }

        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut neighbors = vec![VertexId::INVALID; acc as usize];
        for &(a, b) in &self.edges {
            neighbors[cursor[a.index()] as usize] = b;
            cursor[a.index()] += 1;
            neighbors[cursor[b.index()] as usize] = a;
            cursor[b.index()] += 1;
        }
        // Each vertex's slice was filled in globally sorted edge order, so
        // the `a`-side entries are already ascending, but the mirrored
        // `b`-side entries interleave; sort each list.
        let graph = {
            let mut g = CsrGraph { offsets, neighbors };
            for v in 0..n {
                let (s, e) = (g.offsets[v] as usize, g.offsets[v + 1] as usize);
                g.neighbors[s..e].sort_unstable();
            }
            g
        };
        #[cfg(debug_assertions)]
        graph.check_invariants();
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> CsrGraph {
        // 0 - 1 - 2 - 3
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn counts() {
        let g = path4();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = CsrGraph::from_edges(5, &[(4, 0), (2, 0), (0, 1)]).unwrap();
        assert_eq!(g.neighbors(VertexId(0)), &[VertexId(1), VertexId(2), VertexId(4)]);
        assert!(g.has_edge(VertexId(0), VertexId(4)));
        assert!(g.has_edge(VertexId(4), VertexId(0)));
        assert!(!g.has_edge(VertexId(1), VertexId(2)));
    }

    #[test]
    fn duplicate_and_reversed_edges_collapse() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(VertexId(0)), 1);
    }

    #[test]
    fn self_loops_dropped() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(VertexId(0)), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge(VertexId(0), VertexId(5)).is_err());
    }

    #[test]
    fn edges_iterated_once_canonical() {
        let g = path4();
        let es: Vec<_> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        assert_eq!(es, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = CsrGraph::from_edges(10, &[(0, 1)]).unwrap();
        assert_eq!(g.degree(VertexId(9)), 0);
        assert!(g.neighbors(VertexId(9)).is_empty());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn degree_matches_neighbor_len() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        assert_eq!(g.degree(VertexId(0)), 5);
        for v in 1..6 {
            assert_eq!(g.degree(VertexId(v)), 1);
        }
    }
}

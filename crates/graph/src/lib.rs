//! # `ktg-graph`
//!
//! Graph substrate for the KTG (ICDE 2023) reproduction. The paper's
//! attributed social network `G = (V, E, κ)` is split across two crates:
//! this one holds the topology `(V, E)`; `ktg-keywords` holds `κ`.
//!
//! Everything is built from scratch (no `petgraph`):
//!
//! * [`CsrGraph`] — an immutable, cache-friendly compressed-sparse-row
//!   undirected graph, the form all algorithms and indexes consume.
//! * [`GraphBuilder`] — deduplicating, self-loop-stripping construction.
//! * [`bfs`] — full and hop-bounded breadth-first traversals with reusable
//!   scratch space ([`bfs::BfsScratch`]); these power the paper's social
//!   distance `Dis(u, v)` (Definition 1) and index construction.
//! * [`components`] — connected component labelling (needed by the NLRNL
//!   index to distinguish "distance = c" from "unreachable").
//! * [`DynamicGraph`] — an adjacency-list mutable variant supporting the
//!   edge insertions/deletions of the paper's index-maintenance discussion.
//! * [`io`] — SNAP-style edge-list text I/O so real datasets drop in.
//! * [`stats`] — degree/hop statistics used by dataset profiling and the
//!   experiment reports.


#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod components;
pub mod compressed;
pub mod csr;
pub mod dynamic;
pub mod io;
pub mod stats;
pub mod store;
pub mod streaming;
pub mod subgraph;

pub use bfs::BfsScratch;
pub use compressed::CompressedCsr;
pub use csr::{Adjacency, CsrGraph, GraphBuilder};
pub use dynamic::DynamicGraph;
pub use ktg_common::VertexId;
pub use store::{GraphFormat, GraphStore};
pub use streaming::StreamingGraphBuilder;

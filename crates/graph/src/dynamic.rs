//! A mutable adjacency-list graph.
//!
//! The paper's §V-B discusses maintaining the NLRNL index under edge
//! insertions and deletions ("deleting/inserting one vertex can be divided
//! into edge deletions/insertions"). [`DynamicGraph`] is the mutable
//! counterpart of [`CsrGraph`] used by that maintenance path and by the
//! dataset generators while a graph is still growing. Conversions in both
//! directions are lossless.

use crate::csr::{Adjacency, CsrGraph, GraphBuilder};
use ktg_common::{KtgError, Result, VertexId};

/// An undirected graph with sorted adjacency vectors, supporting edge
/// insertion and deletion in O(d) per endpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DynamicGraph {
    adj: Vec<Vec<VertexId>>,
    num_edges: usize,
}

impl DynamicGraph {
    /// Creates an edgeless graph on `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        DynamicGraph { adj: vec![Vec::new(); num_vertices], num_edges: 0 }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v.index()]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// Whether edge `{u, v}` is present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// Adds a vertex, returning its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adj.push(Vec::new());
        VertexId::new(self.adj.len() - 1)
    }

    /// Inserts the undirected edge `{u, v}`. Returns `true` if the edge was
    /// new, `false` if it already existed. Self-loops are rejected.
    ///
    /// # Errors
    /// [`KtgError::InvalidInput`] on out-of-range endpoints or self-loops.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool> {
        self.check(u, v)?;
        match self.adj[u.index()].binary_search(&v) {
            Ok(_) => Ok(false),
            Err(pos_u) => {
                self.adj[u.index()].insert(pos_u, v);
                let pos_v = self.adj[v.index()]
                    .binary_search(&u)
                    .expect_err("symmetry invariant broken");
                self.adj[v.index()].insert(pos_v, u);
                self.num_edges += 1;
                Ok(true)
            }
        }
    }

    /// Removes the undirected edge `{u, v}`. Returns `true` if it existed.
    ///
    /// # Errors
    /// [`KtgError::InvalidInput`] on out-of-range endpoints or self-loops.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool> {
        self.check(u, v)?;
        match self.adj[u.index()].binary_search(&v) {
            Err(_) => Ok(false),
            Ok(pos_u) => {
                self.adj[u.index()].remove(pos_u);
                let pos_v = self.adj[v.index()].binary_search(&u).map_err(|_| {
                    KtgError::input(format!("adjacency symmetry broken at ({u}, {v})"))
                })?;
                self.adj[v.index()].remove(pos_v);
                self.num_edges -= 1;
                Ok(true)
            }
        }
    }

    fn check(&self, u: VertexId, v: VertexId) -> Result<()> {
        let n = self.adj.len();
        if u.index() >= n || v.index() >= n {
            return Err(KtgError::input(format!(
                "edge ({u}, {v}) out of range for {n} vertices"
            )));
        }
        if u == v {
            return Err(KtgError::input(format!("self-loop at {u}")));
        }
        Ok(())
    }

    /// Freezes into a [`CsrGraph`].
    pub fn to_csr(&self) -> CsrGraph {
        let mut b = GraphBuilder::with_edge_capacity(self.num_vertices(), self.num_edges);
        for (u, ns) in self.adj.iter().enumerate() {
            let u = VertexId::new(u);
            for &v in ns {
                if u < v {
                    b.add_edge_unchecked(u, v);
                }
            }
        }
        b.build()
    }

    /// Thaws a [`CsrGraph`] into mutable form.
    pub fn from_csr(graph: &CsrGraph) -> Self {
        Self::from_graph(graph)
    }

    /// Thaws any [`Adjacency`] (e.g. a compressed graph) into mutable form.
    pub fn from_graph<A: Adjacency>(graph: &A) -> Self {
        let adj: Vec<Vec<VertexId>> = ktg_common::id::vertex_range(graph.num_vertices())
            .map(|v| {
                let mut ns = Vec::with_capacity(graph.degree(v));
                graph.for_each_neighbor(v, |w| ns.push(w));
                ns
            })
            .collect();
        DynamicGraph { adj, num_edges: graph.num_edges() }
    }
}

impl Adjacency for DynamicGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        DynamicGraph::num_vertices(self)
    }
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        DynamicGraph::degree(self, v)
    }
    #[inline]
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        for &w in DynamicGraph::neighbors(self, v) {
            f(w);
        }
    }
    #[inline]
    fn num_edges(&self) -> usize {
        DynamicGraph::num_edges(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = DynamicGraph::new(4);
        assert!(g.insert_edge(VertexId(0), VertexId(2)).unwrap());
        assert!(!g.insert_edge(VertexId(2), VertexId(0)).unwrap(), "dup ignored");
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(VertexId(0), VertexId(2)));
        assert!(g.remove_edge(VertexId(0), VertexId(2)).unwrap());
        assert!(!g.remove_edge(VertexId(0), VertexId(2)).unwrap());
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn neighbor_lists_stay_sorted() {
        let mut g = DynamicGraph::new(5);
        for v in [3u32, 1, 4, 2] {
            g.insert_edge(VertexId(0), VertexId(v)).unwrap();
        }
        let ns: Vec<u32> = g.neighbors(VertexId(0)).iter().map(|v| v.0).collect();
        assert_eq!(ns, vec![1, 2, 3, 4]);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = DynamicGraph::new(2);
        assert!(g.insert_edge(VertexId(1), VertexId(1)).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = DynamicGraph::new(2);
        assert!(g.insert_edge(VertexId(0), VertexId(9)).is_err());
        assert!(g.remove_edge(VertexId(0), VertexId(9)).is_err());
    }

    #[test]
    fn csr_roundtrip() {
        let csr = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let dyn_g = DynamicGraph::from_csr(&csr);
        assert_eq!(dyn_g.num_edges(), 3);
        assert_eq!(dyn_g.to_csr(), csr);
    }

    #[test]
    fn add_vertex_extends() {
        let mut g = DynamicGraph::new(1);
        let v = g.add_vertex();
        assert_eq!(v, VertexId(1));
        g.insert_edge(VertexId(0), v).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn mutation_then_freeze_matches() {
        let mut g = DynamicGraph::new(4);
        g.insert_edge(VertexId(0), VertexId(1)).unwrap();
        g.insert_edge(VertexId(1), VertexId(2)).unwrap();
        g.insert_edge(VertexId(2), VertexId(3)).unwrap();
        g.remove_edge(VertexId(1), VertexId(2)).unwrap();
        let csr = g.to_csr();
        assert_eq!(csr.num_edges(), 2);
        assert!(csr.has_edge(VertexId(0), VertexId(1)));
        assert!(!csr.has_edge(VertexId(1), VertexId(2)));
    }
}

//! Runtime-selected graph representation.
//!
//! [`GraphStore`] is the format-erased topology handle the attributed
//! network carries: flat [`CsrGraph`] (the default — fastest decode) or
//! [`CompressedCsr`] (delta+varint blocks — smallest footprint,
//! selected with `--graph-format compressed`). Everything downstream is
//! generic over [`Adjacency`], so which variant sits inside changes
//! space and decode cost, never results — the differential suites hold
//! the two byte-identical.

use crate::compressed::CompressedCsr;
use crate::csr::{Adjacency, CsrGraph};
use ktg_common::{KtgError, Result, VertexId};

/// The selectable on-heap graph formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphFormat {
    /// Flat CSR arrays (`Vec<u64>` offsets + `Vec<u32>` neighbors).
    Flat,
    /// Delta + varint block-compressed CSR.
    Compressed,
}

impl GraphFormat {
    /// Parses a `--graph-format` flag value.
    ///
    /// # Errors
    /// Returns [`KtgError::InvalidInput`] on unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "flat" => Ok(GraphFormat::Flat),
            "compressed" => Ok(GraphFormat::Compressed),
            other => Err(KtgError::input(format!(
                "unknown graph format '{other}' (flat|compressed)"
            ))),
        }
    }

    /// The flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            GraphFormat::Flat => "flat",
            GraphFormat::Compressed => "compressed",
        }
    }
}

impl std::fmt::Display for GraphFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A graph in one of the runtime-selectable formats (module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphStore {
    /// Flat CSR.
    Flat(CsrGraph),
    /// Compressed CSR.
    Compressed(CompressedCsr),
}

impl GraphStore {
    /// Wraps a flat graph in the requested format (compressing if asked).
    pub fn from_csr(graph: CsrGraph, format: GraphFormat) -> Self {
        match format {
            GraphFormat::Flat => GraphStore::Flat(graph),
            GraphFormat::Compressed => GraphStore::Compressed(CompressedCsr::from_csr(&graph)),
        }
    }

    /// Which format this store holds.
    pub fn format(&self) -> GraphFormat {
        match self {
            GraphStore::Flat(_) => GraphFormat::Flat,
            GraphStore::Compressed(_) => GraphFormat::Compressed,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        match self {
            GraphStore::Flat(g) => g.num_vertices(),
            GraphStore::Compressed(g) => g.num_vertices(),
        }
    }

    /// Iterates all vertices.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> {
        ktg_common::id::vertex_range(self.num_vertices())
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        match self {
            GraphStore::Flat(g) => g.num_edges(),
            GraphStore::Compressed(g) => g.num_edges(),
        }
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        match self {
            GraphStore::Flat(g) => g.degree(v),
            GraphStore::Compressed(g) => g.degree(v),
        }
    }

    /// Whether the undirected edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        match self {
            GraphStore::Flat(g) => g.has_edge(u, v),
            GraphStore::Compressed(g) => g.has_edge(u, v),
        }
    }

    /// The neighbor list of `v` as an owned vector (tests and cold paths;
    /// hot paths use [`Adjacency::for_each_neighbor`]).
    pub fn neighbors_vec(&self, v: VertexId) -> Vec<VertexId> {
        match self {
            GraphStore::Flat(g) => g.neighbors(v).to_vec(),
            GraphStore::Compressed(g) => g.neighbors_vec(v),
        }
    }

    /// A flat copy of the topology (decompressing if needed).
    pub fn to_csr(&self) -> CsrGraph {
        match self {
            GraphStore::Flat(g) => g.clone(),
            GraphStore::Compressed(g) => g.to_csr(),
        }
    }

    /// The flat graph, when this store holds one.
    pub fn as_flat(&self) -> Option<&CsrGraph> {
        match self {
            GraphStore::Flat(g) => Some(g),
            GraphStore::Compressed(_) => None,
        }
    }

    /// The compressed graph, when this store holds one.
    pub fn as_compressed(&self) -> Option<&CompressedCsr> {
        match self {
            GraphStore::Flat(_) => None,
            GraphStore::Compressed(g) => Some(g),
        }
    }

    /// Approximate heap usage in bytes.
    pub fn heap_bytes(&self) -> usize {
        match self {
            GraphStore::Flat(g) => g.heap_bytes(),
            GraphStore::Compressed(g) => g.heap_bytes(),
        }
    }
}

impl From<CsrGraph> for GraphStore {
    fn from(graph: CsrGraph) -> Self {
        GraphStore::Flat(graph)
    }
}

impl Adjacency for GraphStore {
    #[inline]
    fn num_vertices(&self) -> usize {
        GraphStore::num_vertices(self)
    }
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        GraphStore::degree(self, v)
    }
    #[inline]
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, f: F) {
        match self {
            GraphStore::Flat(g) => g.for_each_neighbor(v, f),
            GraphStore::Compressed(g) => g.for_each_neighbor(v, f),
        }
    }
    #[inline]
    fn num_edges(&self) -> usize {
        GraphStore::num_edges(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]).unwrap()
    }

    #[test]
    fn both_formats_expose_the_same_graph() {
        let flat = GraphStore::from_csr(sample(), GraphFormat::Flat);
        let comp = GraphStore::from_csr(sample(), GraphFormat::Compressed);
        assert_eq!(flat.format(), GraphFormat::Flat);
        assert_eq!(comp.format(), GraphFormat::Compressed);
        assert_eq!(flat.num_vertices(), comp.num_vertices());
        assert_eq!(flat.num_edges(), comp.num_edges());
        for i in 0..flat.num_vertices() {
            let v = VertexId::new(i);
            assert_eq!(flat.degree(v), comp.degree(v));
            assert_eq!(flat.neighbors_vec(v), comp.neighbors_vec(v));
        }
        assert!(flat.has_edge(VertexId(0), VertexId(5)));
        assert!(comp.has_edge(VertexId(0), VertexId(5)));
        assert!(!comp.has_edge(VertexId(0), VertexId(3)));
        assert_eq!(comp.to_csr(), sample());
        assert_eq!(flat, GraphStore::Flat(comp.to_csr()));
    }

    #[test]
    fn format_parsing() {
        assert_eq!(GraphFormat::parse("flat").unwrap(), GraphFormat::Flat);
        assert_eq!(GraphFormat::parse("compressed").unwrap(), GraphFormat::Compressed);
        assert!(GraphFormat::parse("zstd").is_err());
        assert_eq!(GraphFormat::Compressed.to_string(), "compressed");
    }

    #[test]
    fn accessors() {
        let comp = GraphStore::from_csr(sample(), GraphFormat::Compressed);
        assert!(comp.as_flat().is_none());
        assert!(comp.as_compressed().is_some());
        let flat: GraphStore = sample().into();
        assert!(flat.as_flat().is_some());
        assert!(flat.heap_bytes() > 0);
    }
}

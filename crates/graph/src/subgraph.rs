//! Subgraph extraction and preprocessing.
//!
//! Real social-network pipelines (including the paper's datasets) are
//! routinely preprocessed: restrict to the largest connected component,
//! take an induced subgraph of a vertex sample, or cap pathological hub
//! degrees. Each operation returns both the new graph and the
//! old-to-new vertex mapping so keyword arenas can be remapped alongside.

use crate::bfs::{bfs_levels, BfsScratch};
use crate::components::Components;
use crate::csr::{Adjacency, CsrGraph, GraphBuilder};
use ktg_common::id::vertex_range;
use ktg_common::VertexId;

/// The result of a vertex-set restriction: the induced graph plus the
/// id mappings in both directions.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The induced graph on dense new ids `0..kept`.
    pub graph: CsrGraph,
    /// `old_of[new.index()]` = the original id.
    pub old_of: Vec<VertexId>,
    /// `new_of[old.index()]` = the new id, or `VertexId::INVALID` if the
    /// vertex was dropped.
    pub new_of: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Remaps an original vertex id to the subgraph (if kept).
    pub fn map(&self, old: VertexId) -> Option<VertexId> {
        let new = self.new_of[old.index()];
        new.is_valid().then_some(new)
    }
}

/// Induces the subgraph on `keep` (original ids; duplicates ignored).
/// New ids follow the ascending order of the kept original ids.
pub fn induce<A: Adjacency>(graph: &A, keep: &[VertexId]) -> InducedSubgraph {
    let n = graph.num_vertices();
    let mut kept: Vec<VertexId> = keep.to_vec();
    kept.sort_unstable();
    kept.dedup();
    debug_assert!(kept.last().is_none_or(|v| v.index() < n), "kept vertex out of range");

    let mut new_of = vec![VertexId::INVALID; n];
    for (new, &old) in kept.iter().enumerate() {
        new_of[old.index()] = VertexId::new(new);
    }

    let mut builder = GraphBuilder::new(kept.len());
    for &old_u in &kept {
        let new_u = new_of[old_u.index()];
        graph.for_each_neighbor(old_u, |old_v| {
            let new_v = new_of[old_v.index()];
            if new_v.is_valid() && new_u < new_v {
                builder.add_edge_unchecked(new_u, new_v);
            }
        });
    }
    InducedSubgraph { graph: builder.build(), old_of: kept, new_of }
}

/// Restricts to the largest connected component (ties broken by the
/// smallest component label, i.e. the earliest-discovered component).
pub fn largest_component<A: Adjacency>(graph: &A) -> InducedSubgraph {
    let comps = Components::compute(graph);
    let mut best_label = 0u32;
    let mut best_size = 0usize;
    for label in 0..comps.count() as u32 {
        if comps.size(label) > best_size {
            best_size = comps.size(label);
            best_label = label;
        }
    }
    let keep: Vec<VertexId> = vertex_range(graph.num_vertices())
        .filter(|&v| comps.count() > 0 && comps.label(v) == best_label)
        .collect();
    induce(graph, &keep)
}

/// Restricts to the ball of radius `hops` around `center` (inclusive) —
/// the "ego-net expansion" used to cut working-set-sized samples out of
/// large graphs.
pub fn ball<A: Adjacency>(graph: &A, center: VertexId, hops: u32) -> InducedSubgraph {
    let mut keep = vec![center];
    let mut scratch = BfsScratch::new(graph.num_vertices());
    bfs_levels(graph, center, hops as usize, &mut scratch, |v, _| keep.push(v));
    induce(graph, &keep)
}

/// Caps vertex degrees at `max_degree` by dropping the highest-id excess
/// neighbors of each over-degree vertex (deterministic). Used to tame
/// pathological hubs before index construction; returns the trimmed graph
/// on the *same* vertex ids.
pub fn cap_degrees(graph: &CsrGraph, max_degree: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new(graph.num_vertices());
    // An edge survives if it is within the first `max_degree` neighbors
    // of *both* endpoints (neighbor lists are sorted by id).
    for u in graph.vertices() {
        let keep_u = &graph.neighbors(u)[..graph.degree(u).min(max_degree)];
        for &v in keep_u {
            if u < v {
                let keep_v = &graph.neighbors(v)[..graph.degree(v).min(max_degree)];
                if keep_v.binary_search(&u).is_ok() {
                    builder.add_edge_unchecked(u, v);
                }
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Components: {0,1,2,3} path, {4,5} edge, {6} isolated.
    fn fixture() -> CsrGraph {
        CsrGraph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (4, 5)]).unwrap()
    }

    #[test]
    fn induce_keeps_internal_edges_only() {
        let g = fixture();
        let sub = induce(&g, &[VertexId(1), VertexId(2), VertexId(4)]);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 1, "only (1,2) is internal");
        assert_eq!(sub.old_of, vec![VertexId(1), VertexId(2), VertexId(4)]);
        assert_eq!(sub.map(VertexId(2)), Some(VertexId(1)));
        assert_eq!(sub.map(VertexId(0)), None);
    }

    #[test]
    fn induce_duplicates_ignored() {
        let g = fixture();
        let sub = induce(&g, &[VertexId(1), VertexId(1), VertexId(2)]);
        assert_eq!(sub.graph.num_vertices(), 2);
    }

    #[test]
    fn largest_component_extracts_path() {
        let g = fixture();
        let sub = largest_component(&g);
        assert_eq!(sub.graph.num_vertices(), 4);
        assert_eq!(sub.graph.num_edges(), 3);
        assert_eq!(sub.old_of, vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);
    }

    #[test]
    fn largest_component_of_empty_graph() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        let sub = largest_component(&g);
        assert_eq!(sub.graph.num_vertices(), 0);
    }

    #[test]
    fn ball_radius_one() {
        let g = fixture();
        let sub = ball(&g, VertexId(1), 1);
        assert_eq!(sub.old_of, vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(sub.graph.num_edges(), 2);
    }

    #[test]
    fn ball_radius_zero_is_single_vertex() {
        let g = fixture();
        let sub = ball(&g, VertexId(3), 0);
        assert_eq!(sub.graph.num_vertices(), 1);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn cap_degrees_trims_hubs() {
        // Star: center 0 with 5 leaves.
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        let capped = cap_degrees(&g, 2);
        assert_eq!(capped.num_vertices(), 6);
        assert_eq!(capped.degree(VertexId(0)), 2);
        // The kept neighbors are the lowest-id ones.
        assert_eq!(capped.neighbors(VertexId(0)), &[VertexId(1), VertexId(2)]);
    }

    #[test]
    fn cap_degrees_noop_when_under_cap() {
        let g = fixture();
        assert_eq!(cap_degrees(&g, 10), g);
    }

    #[test]
    fn cap_is_mutual() {
        // Edge (u, v) survives only if within both endpoints' caps.
        let g = CsrGraph::from_edges(5, &[(0, 3), (0, 4), (1, 3), (2, 3), (3, 4)]).unwrap();
        let capped = cap_degrees(&g, 2);
        for v in capped.vertices() {
            assert!(capped.degree(v) <= 2, "{v:?} over cap");
        }
    }
}

//! Breadth-first traversals.
//!
//! Social distance (paper Definition 1) is the hop count of the shortest
//! path, so every distance question in the system reduces to BFS. The
//! branch-and-bound search issues *many* bounded traversals per query, so
//! all entry points take a reusable [`BfsScratch`]: the frontier vectors are
//! recycled and the visited set is an epoch marker with O(1) reset.

use crate::csr::Adjacency;
use ktg_common::{EpochMarker, VertexId};

/// Reusable scratch space for BFS traversals over graphs with at most the
/// arena's number of vertices. Create once per thread, pass to every call.
#[derive(Clone, Debug)]
pub struct BfsScratch {
    visited: EpochMarker,
    frontier: Vec<VertexId>,
    next: Vec<VertexId>,
}

impl Default for BfsScratch {
    /// An empty arena; [`BfsScratch::fit`] grows it to the graph at hand.
    /// Lets pooled per-worker scratch start lazy in the batched executor.
    fn default() -> Self {
        BfsScratch::new(0)
    }
}

impl BfsScratch {
    /// Creates scratch space for graphs of up to `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        BfsScratch {
            visited: EpochMarker::new(num_vertices),
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Grows the arena if the graph is larger than at construction.
    pub fn fit(&mut self, num_vertices: usize) {
        self.visited.grow(num_vertices);
    }
}

/// Runs a BFS from `source`, visiting every reachable vertex at hop distance
/// `1..=max_depth` (the source itself is *not* reported). `visit` receives
/// `(vertex, depth)`; depths arrive in nondecreasing order.
///
/// `max_depth = usize::MAX` gives an unbounded traversal.
pub fn bfs_levels<A: Adjacency, F>(
    graph: &A,
    source: VertexId,
    max_depth: usize,
    scratch: &mut BfsScratch,
    mut visit: F,
) where
    F: FnMut(VertexId, u32),
{
    scratch.fit(graph.num_vertices());
    scratch.visited.reset();
    scratch.frontier.clear();
    scratch.next.clear();

    scratch.visited.mark_vertex(source);
    scratch.frontier.push(source);

    let mut depth = 0u32;
    while !scratch.frontier.is_empty() && (depth as usize) < max_depth {
        depth += 1;
        scratch.next.clear();
        for i in 0..scratch.frontier.len() {
            let u = scratch.frontier[i];
            let (visited, next) = (&mut scratch.visited, &mut scratch.next);
            graph.for_each_neighbor(u, |v| {
                if visited.mark_vertex(v) {
                    visit(v, depth);
                    next.push(v);
                }
            });
        }
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
    }
}

/// Hop distance between `u` and `v`, capped at `max_depth`. Returns `None`
/// if `v` is farther than `max_depth` hops (or unreachable).
pub fn distance_bounded<A: Adjacency>(
    graph: &A,
    u: VertexId,
    v: VertexId,
    max_depth: usize,
    scratch: &mut BfsScratch,
) -> Option<u32> {
    if u == v {
        return Some(0);
    }
    let mut found = None;
    // Early-exit BFS: stop expanding once v is seen.
    scratch.fit(graph.num_vertices());
    scratch.visited.reset();
    scratch.frontier.clear();
    scratch.next.clear();
    scratch.visited.mark_vertex(u);
    scratch.frontier.push(u);
    let mut depth = 0u32;
    'outer: while !scratch.frontier.is_empty() && (depth as usize) < max_depth {
        depth += 1;
        scratch.next.clear();
        for i in 0..scratch.frontier.len() {
            let x = scratch.frontier[i];
            let (visited, next) = (&mut scratch.visited, &mut scratch.next);
            graph.for_each_neighbor(x, |y| {
                if visited.mark_vertex(y) {
                    if y == v {
                        found = Some(depth);
                    } else {
                        next.push(y);
                    }
                }
            });
            if found.is_some() {
                break 'outer;
            }
        }
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
    }
    found
}

/// Collects the vertices at each hop level `1..=max_depth` from `source`.
/// `levels[d - 1]` holds the vertices at exact distance `d`; trailing empty
/// levels are trimmed.
pub fn collect_levels<A: Adjacency>(
    graph: &A,
    source: VertexId,
    max_depth: usize,
    scratch: &mut BfsScratch,
) -> Vec<Vec<VertexId>> {
    let mut levels: Vec<Vec<VertexId>> = Vec::new();
    bfs_levels(graph, source, max_depth, scratch, |v, d| {
        let d = d as usize;
        if levels.len() < d {
            levels.resize_with(d, Vec::new);
        }
        levels[d - 1].push(v);
    });
    levels
}

/// Collects hop levels like [`collect_levels`], but consults `keep_going`
/// after each completed level: when it returns `false`, the traversal
/// stops without exploring deeper levels. Used by index builders that
/// only need a prefix of the hop structure (e.g. the NL index stores
/// levels only up to the widest one).
pub fn collect_levels_while<A: Adjacency, F>(
    graph: &A,
    source: VertexId,
    scratch: &mut BfsScratch,
    mut keep_going: F,
) -> Vec<Vec<VertexId>>
where
    F: FnMut(&[Vec<VertexId>]) -> bool,
{
    scratch.fit(graph.num_vertices());
    scratch.visited.reset();
    scratch.frontier.clear();
    scratch.visited.mark_vertex(source);
    scratch.frontier.push(source);

    let mut levels: Vec<Vec<VertexId>> = Vec::new();
    loop {
        let mut next: Vec<VertexId> = Vec::new();
        for i in 0..scratch.frontier.len() {
            let u = scratch.frontier[i];
            let visited = &mut scratch.visited;
            graph.for_each_neighbor(u, |v| {
                if visited.mark_vertex(v) {
                    next.push(v);
                }
            });
        }
        if next.is_empty() {
            break;
        }
        scratch.frontier.clear();
        scratch.frontier.extend_from_slice(&next);
        levels.push(next);
        if !keep_going(&levels) {
            break;
        }
    }
    levels
}

/// All-pairs hop distances by repeated BFS. O(n·m) — for tests and small
/// ground-truth computations only. `dist[u][v] == u32::MAX` means
/// unreachable.
pub fn all_pairs_distances<A: Adjacency>(graph: &A) -> Vec<Vec<u32>> {
    let n = graph.num_vertices();
    let mut scratch = BfsScratch::new(n);
    let mut dist = vec![vec![u32::MAX; n]; n];
    for u in ktg_common::id::vertex_range(n) {
        dist[u.index()][u.index()] = 0;
        let row = &mut dist[u.index()];
        bfs_levels(graph, u, usize::MAX, &mut scratch, |v, d| {
            row[v.index()] = d;
        });
    }
    dist
}

/// The eccentricity of `source`: the greatest hop distance to any reachable
/// vertex (0 for an isolated vertex).
pub fn eccentricity<A: Adjacency>(graph: &A, source: VertexId, scratch: &mut BfsScratch) -> u32 {
    let mut max = 0;
    bfs_levels(graph, source, usize::MAX, scratch, |_, d| max = max.max(d));
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    /// 0-1-2-3 path plus isolated 4.
    fn fixture() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn levels_from_path_end() {
        let g = fixture();
        let mut s = BfsScratch::new(5);
        let levels = collect_levels(&g, VertexId(0), usize::MAX, &mut s);
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![VertexId(1)]);
        assert_eq!(levels[1], vec![VertexId(2)]);
        assert_eq!(levels[2], vec![VertexId(3)]);
    }

    #[test]
    fn bounded_depth_stops() {
        let g = fixture();
        let mut s = BfsScratch::new(5);
        let levels = collect_levels(&g, VertexId(0), 2, &mut s);
        assert_eq!(levels.len(), 2);
        assert!(levels.iter().flatten().all(|v| *v != VertexId(3)));
    }

    #[test]
    fn distance_bounded_hits_and_misses() {
        let g = fixture();
        let mut s = BfsScratch::new(5);
        assert_eq!(distance_bounded(&g, VertexId(0), VertexId(3), 10, &mut s), Some(3));
        assert_eq!(distance_bounded(&g, VertexId(0), VertexId(3), 2, &mut s), None);
        assert_eq!(distance_bounded(&g, VertexId(0), VertexId(0), 0, &mut s), Some(0));
        assert_eq!(distance_bounded(&g, VertexId(0), VertexId(4), 100, &mut s), None);
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let g = fixture();
        let mut s = BfsScratch::new(5);
        for _ in 0..3 {
            let mut seen = 0;
            bfs_levels(&g, VertexId(1), usize::MAX, &mut s, |_, _| seen += 1);
            assert_eq!(seen, 3, "1 reaches 0, 2, 3 every time");
        }
    }

    #[test]
    fn all_pairs_matches_manual() {
        let g = fixture();
        let d = all_pairs_distances(&g);
        assert_eq!(d[0][3], 3);
        assert_eq!(d[1][3], 2);
        assert_eq!(d[2][2], 0);
        assert_eq!(d[0][4], u32::MAX);
        // Symmetry.
        for (u, row) in d.iter().enumerate() {
            for (v, &duv) in row.iter().enumerate() {
                assert_eq!(duv, d[v][u]);
            }
        }
    }

    #[test]
    fn eccentricity_on_path() {
        let g = fixture();
        let mut s = BfsScratch::new(5);
        assert_eq!(eccentricity(&g, VertexId(0), &mut s), 3);
        assert_eq!(eccentricity(&g, VertexId(1), &mut s), 2);
        assert_eq!(eccentricity(&g, VertexId(4), &mut s), 0);
    }

    #[test]
    fn collect_levels_while_stops_on_request() {
        // Path 0-1-2-3: stop after the first level.
        let g = fixture();
        let mut s = BfsScratch::new(5);
        let levels = collect_levels_while(&g, VertexId(0), &mut s, |lv| lv.is_empty());
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0], vec![VertexId(1)]);
    }

    #[test]
    fn collect_levels_while_unbounded_matches_collect_levels() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)]).unwrap();
        let mut s = BfsScratch::new(7);
        let a = collect_levels(&g, VertexId(0), usize::MAX, &mut s);
        let b = collect_levels_while(&g, VertexId(0), &mut s, |_| true);
        assert_eq!(a, b);
    }

    #[test]
    fn collect_levels_while_peak_detection() {
        // Star from a leaf: widths [1, 4] then nothing; the "stop after a
        // width decrease" predicate used by the NL build must keep both.
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        let mut s = BfsScratch::new(6);
        let levels = collect_levels_while(&g, VertexId(1), &mut s, |lv| {
            lv.len() < 2 || lv[lv.len() - 1].len() >= lv[lv.len() - 2].len()
        });
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0], vec![VertexId(0)]);
        assert_eq!(levels[1].len(), 4);
    }

    #[test]
    fn collect_levels_while_isolated_source() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let mut s = BfsScratch::new(3);
        let levels = collect_levels_while(&g, VertexId(2), &mut s, |_| true);
        assert!(levels.is_empty());
    }

    #[test]
    fn cycle_distances() {
        // 6-cycle: opposite vertices at distance 3.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let mut s = BfsScratch::new(6);
        assert_eq!(distance_bounded(&g, VertexId(0), VertexId(3), 10, &mut s), Some(3));
        assert_eq!(distance_bounded(&g, VertexId(0), VertexId(5), 10, &mut s), Some(1));
    }
}

//! Graph statistics.
//!
//! Used in three places: dataset profiling (checking that a synthetic graph
//! matches its target `(n, m)` and degree shape), index parameter selection
//! (hop-level widths drive the NL/NLRNL `h`/`c` choices), and the experiment
//! reports.

use crate::bfs::{bfs_levels, BfsScratch};
use crate::csr::Adjacency;
use ktg_common::id::vertex_range;
use ktg_common::VertexId;

/// Summary statistics of a graph's degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`2m / n`).
    pub mean: f64,
    /// Median degree.
    pub median: usize,
}

/// Computes degree statistics (O(n log n) for the median sort).
pub fn degree_stats<A: Adjacency>(graph: &A) -> DegreeStats {
    let n = graph.num_vertices();
    if n == 0 {
        return DegreeStats { min: 0, max: 0, mean: 0.0, median: 0 };
    }
    let mut degrees: Vec<usize> = vertex_range(n).map(|v| graph.degree(v)).collect();
    degrees.sort_unstable();
    DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean: 2.0 * graph.num_edges() as f64 / n as f64,
        median: degrees[n / 2],
    }
}

/// The hop histogram from a single source: `hist[d - 1]` counts vertices at
/// exact distance `d` (source excluded; trailing zeros trimmed).
pub fn hop_histogram<A: Adjacency>(
    graph: &A,
    source: VertexId,
    scratch: &mut BfsScratch,
) -> Vec<usize> {
    let mut hist: Vec<usize> = Vec::new();
    bfs_levels(graph, source, usize::MAX, scratch, |_, d| {
        let d = d as usize;
        if hist.len() < d {
            hist.resize(d, 0);
        }
        hist[d - 1] += 1;
    });
    hist
}

/// Estimates the graph's effective diameter and mean distance by BFS from a
/// deterministic sample of `samples` sources (every `n/samples`-th vertex).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HopStats {
    /// Largest distance observed from any sampled source.
    pub max_hops: u32,
    /// Mean finite distance over all sampled (source, target) pairs.
    pub mean_hops: f64,
}

/// Samples hop statistics. `samples` is clamped to `[1, n]`.
pub fn sample_hop_stats<A: Adjacency>(graph: &A, samples: usize) -> HopStats {
    let n = graph.num_vertices();
    if n == 0 {
        return HopStats { max_hops: 0, mean_hops: 0.0 };
    }
    let samples = samples.clamp(1, n);
    let stride = n / samples;
    let mut scratch = BfsScratch::new(n);
    let mut max_hops = 0u32;
    let mut total = 0u64;
    let mut count = 0u64;
    for i in 0..samples {
        let src = VertexId::new(i * stride);
        bfs_levels(graph, src, usize::MAX, &mut scratch, |_, d| {
            max_hops = max_hops.max(d);
            total += d as u64;
            count += 1;
        });
    }
    HopStats {
        max_hops,
        mean_hops: if count == 0 { 0.0 } else { total as f64 / count as f64 },
    }
}

/// One-line human-readable summary used by examples and the bench harness.
pub fn summary<A: Adjacency>(graph: &A) -> String {
    let d = degree_stats(graph);
    format!(
        "|V|={} |E|={} deg(min/med/mean/max)={}/{}/{:.2}/{}",
        graph.num_vertices(),
        graph.num_edges(),
        d.min,
        d.median,
        d.mean,
        d.max
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    fn star() -> CsrGraph {
        // Center 0 with leaves 1..=4.
        CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap()
    }

    #[test]
    fn degree_stats_star() {
        let s = degree_stats(&star());
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.median, 1);
        assert!((s.mean - 1.6).abs() < 1e-9);
    }

    #[test]
    fn degree_stats_empty() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s, DegreeStats { min: 0, max: 0, mean: 0.0, median: 0 });
    }

    #[test]
    fn hop_histogram_star() {
        let g = star();
        let mut s = BfsScratch::new(5);
        assert_eq!(hop_histogram(&g, VertexId(0), &mut s), vec![4]);
        assert_eq!(hop_histogram(&g, VertexId(1), &mut s), vec![1, 3]);
    }

    #[test]
    fn hop_stats_path() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let h = sample_hop_stats(&g, 4);
        assert_eq!(h.max_hops, 3);
        // All pairs: distances 1,2,3,1,2,1 both directions → mean 10/6.
        assert!((h.mean_hops - 10.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn summary_contains_counts() {
        let text = summary(&star());
        assert!(text.contains("|V|=5"));
        assert!(text.contains("|E|=4"));
    }
}

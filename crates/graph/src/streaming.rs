//! Bounded-memory streaming graph construction.
//!
//! [`GraphBuilder`](crate::GraphBuilder) buffers the whole edge list and
//! sorts it in one pass — fine to a few million edges, but a 10M-vertex
//! graph's mirrored half-edge array is the allocation spike that caps
//! the substrate (ROADMAP item 2). [`StreamingGraphBuilder`] replaces
//! the monolithic sort with a classic external sort:
//!
//! 1. **Ingest** — edges arrive in any order; both orientations of each
//!    undirected edge are buffered as `(src, dst)` half-edges.
//! 2. **Spill** — when the buffer reaches its chunk capacity it is
//!    sorted, deduplicated, and written to a binary run file (raw
//!    little-endian `u32` pairs), keeping resident memory bounded by
//!    the chunk size regardless of graph size.
//! 3. **Merge** — [`StreamingGraphBuilder::finish`] k-way merges the
//!    runs (plus the final in-memory buffer) with a binary heap,
//!    deduplicates adjacent pairs, and streams the globally sorted
//!    half-edges straight into CSR arrays — no second full-size sort
//!    buffer ever exists. [`StreamingGraphBuilder::finish_compressed`]
//!    feeds the same merge directly into the block varint encoder, so a
//!    compressed graph is built without materializing the flat arrays.
//!
//! The result is identical to `GraphBuilder` over the same edge
//! multiset (same dedup, same self-loop stripping, same sorted lists) —
//! a differential test holds the two equal — so chunk size and spill
//! count affect memory and wall clock only, never the graph.

use crate::compressed::{CompressedCsr, Encoder};
use crate::csr::CsrGraph;
use ktg_common::{KtgError, Result, VertexId};
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::Mutex;

/// Default in-memory chunk capacity, in half-edges (≈ 32 MiB buffered).
const DEFAULT_CHUNK: usize = 4 << 20;

/// Process-wide spill-file counter so concurrent builders in one
/// process never collide on run names (the pid disambiguates between
/// processes). A mutex, not an atomic: this is a cold path and keeps
/// the audited-atomics surface unchanged.
static SPILL_SEQ: Mutex<u64> = Mutex::new(0);

fn next_spill_path() -> PathBuf {
    let mut seq = match SPILL_SEQ.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    *seq += 1;
    std::env::temp_dir().join(format!("ktg-spill-{}-{}.run", std::process::id(), *seq))
}

/// External-sort graph builder (module docs).
#[derive(Debug)]
pub struct StreamingGraphBuilder {
    num_vertices: usize,
    chunk_capacity: usize,
    buf: Vec<(u32, u32)>,
    runs: Vec<PathBuf>,
}

impl StreamingGraphBuilder {
    /// Creates a builder for `num_vertices` vertices with the default
    /// chunk capacity.
    pub fn new(num_vertices: usize) -> Self {
        Self::with_chunk_capacity(num_vertices, DEFAULT_CHUNK)
    }

    /// Creates a builder spilling every `chunk_capacity` buffered
    /// half-edges (minimum 2 — one undirected edge).
    pub fn with_chunk_capacity(num_vertices: usize, chunk_capacity: usize) -> Self {
        StreamingGraphBuilder {
            num_vertices,
            chunk_capacity: chunk_capacity.max(2),
            buf: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Number of vertices the graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of spill runs written so far (observability for tests).
    pub fn spilled_runs(&self) -> usize {
        self.runs.len()
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored.
    ///
    /// # Errors
    /// Returns [`KtgError::InvalidInput`] if either endpoint is out of
    /// range, or [`KtgError::Io`] if a chunk spill fails.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        if u.index() >= self.num_vertices || v.index() >= self.num_vertices {
            return Err(KtgError::input(format!(
                "edge ({u}, {v}) out of range for {} vertices",
                self.num_vertices
            )));
        }
        if u == v {
            return Ok(());
        }
        self.buf.push((u.0, v.0));
        self.buf.push((v.0, u.0));
        if self.buf.len() >= self.chunk_capacity {
            self.spill()?;
        }
        Ok(())
    }

    /// Sorts and writes the current buffer as one run file.
    fn spill(&mut self) -> Result<()> {
        self.buf.sort_unstable();
        self.buf.dedup();
        let path = next_spill_path();
        let mut writer = BufWriter::new(File::create(&path)?);
        for &(s, d) in &self.buf {
            writer.write_all(&s.to_le_bytes())?;
            writer.write_all(&d.to_le_bytes())?;
        }
        writer.flush()?;
        self.runs.push(path);
        self.buf.clear();
        Ok(())
    }

    /// Merges all runs and the residual buffer, feeding each vertex's
    /// final sorted neighbor list to `sink` in vertex order (including
    /// empty lists for isolated vertices).
    fn merge_into<F: FnMut(VertexId, &[VertexId])>(mut self, mut sink: F) -> Result<()> {
        self.buf.sort_unstable();
        self.buf.dedup();

        let mut sources: Vec<RunReader> = Vec::with_capacity(self.runs.len() + 1);
        for path in std::mem::take(&mut self.runs) {
            sources.push(RunReader::open(path)?);
        }
        sources.push(RunReader::from_memory(std::mem::take(&mut self.buf)));

        // Min-heap keyed on (pair, source index): the source index tie
        // break is only reached on duplicates, which are dropped anyway.
        let mut heap: BinaryHeap<std::cmp::Reverse<((u32, u32), usize)>> = BinaryHeap::new();
        for (i, src) in sources.iter_mut().enumerate() {
            if let Some(pair) = src.next_pair()? {
                heap.push(std::cmp::Reverse((pair, i)));
            }
        }

        let mut current_src = 0u32;
        let mut list: Vec<VertexId> = Vec::new();
        let mut last: Option<(u32, u32)> = None;
        while let Some(std::cmp::Reverse((pair, i))) = heap.pop() {
            if let Some(next) = sources[i].next_pair()? {
                heap.push(std::cmp::Reverse((next, i)));
            }
            if last == Some(pair) {
                continue; // cross-run duplicate
            }
            last = Some(pair);
            let (s, d) = pair;
            while current_src < s {
                sink(VertexId(current_src), &list);
                list.clear();
                current_src += 1;
            }
            list.push(VertexId(d));
        }
        while (current_src as usize) < self.num_vertices {
            sink(VertexId(current_src), &list);
            list.clear();
            current_src += 1;
        }
        Ok(())
    }

    /// Finalizes into a flat [`CsrGraph`].
    ///
    /// # Errors
    /// Returns [`KtgError::Io`] if reading a spill run fails.
    pub fn finish(self) -> Result<CsrGraph> {
        let n = self.num_vertices;
        let mut offsets: Vec<u64> = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut neighbors: Vec<VertexId> = Vec::new();
        self.merge_into(|_, list| {
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u64);
        })?;
        CsrGraph::from_sorted_parts(offsets, neighbors)
    }

    /// Finalizes straight into a [`CompressedCsr`], never materializing
    /// the flat neighbor array: the merge output is block-encoded one
    /// vertex at a time.
    ///
    /// # Errors
    /// Returns [`KtgError::Io`] if reading a spill run fails.
    pub fn finish_compressed(self) -> Result<CompressedCsr> {
        let mut enc = Encoder::new(self.num_vertices);
        self.merge_into(|_, list| enc.push_list(list))?;
        Ok(enc.finish())
    }
}

impl Drop for StreamingGraphBuilder {
    fn drop(&mut self) {
        // Best-effort cleanup of any runs not consumed by a finish call.
        for path in &self.runs {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One merge source: a buffered spill file (deleted once drained) or
/// the residual in-memory chunk.
enum RunReader {
    File { reader: BufReader<File>, path: PathBuf, done: bool },
    Memory { pairs: std::vec::IntoIter<(u32, u32)> },
}

impl RunReader {
    fn open(path: PathBuf) -> Result<Self> {
        let reader = BufReader::new(File::open(&path)?);
        Ok(RunReader::File { reader, path, done: false })
    }

    fn from_memory(pairs: Vec<(u32, u32)>) -> Self {
        RunReader::Memory { pairs: pairs.into_iter() }
    }

    fn next_pair(&mut self) -> Result<Option<(u32, u32)>> {
        match self {
            RunReader::Memory { pairs } => Ok(pairs.next()),
            RunReader::File { reader, path, done } => {
                if *done {
                    return Ok(None);
                }
                let mut buf = [0u8; 8];
                let mut filled = 0usize;
                while filled < 8 {
                    let read = reader.read(&mut buf[filled..])?;
                    if read == 0 {
                        break;
                    }
                    filled += read;
                }
                match filled {
                    0 => {
                        *done = true;
                        let _ = std::fs::remove_file(&path);
                        Ok(None)
                    }
                    8 => {
                        let s = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
                        let d = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
                        Ok(Some((s, d)))
                    }
                    _ => Err(KtgError::input(format!(
                        "truncated spill run {} (trailing {filled} bytes)",
                        path.display()
                    ))),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;
    use ktg_common::SeededRng;

    fn random_edges(n: u32, m: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut rng = SeededRng::seed_from_u64(seed);
        (0..m)
            .map(|_| (rng.bounded_u64(n as u64) as u32, rng.bounded_u64(n as u64) as u32))
            .collect()
    }

    /// The streaming path must equal the monolithic path edge for edge,
    /// at chunk sizes that force zero, some, and many spills.
    #[test]
    fn matches_monolithic_builder_across_chunk_sizes() {
        let n = 300u32;
        let edges = random_edges(n, 2000, 0xFEED);
        let mut mono = GraphBuilder::new(n as usize);
        for &(u, v) in &edges {
            mono.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        let expected = mono.build();

        for chunk in [usize::MAX, 4096, 512, 64, 2] {
            let mut b = StreamingGraphBuilder::with_chunk_capacity(n as usize, chunk);
            for &(u, v) in &edges {
                b.add_edge(VertexId(u), VertexId(v)).unwrap();
            }
            let spills = b.spilled_runs();
            if chunk <= 512 {
                assert!(spills > 1, "chunk {chunk} never spilled");
            }
            assert_eq!(b.finish().unwrap(), expected, "chunk {chunk} ({spills} spills)");
        }
    }

    #[test]
    fn finish_compressed_equals_compressing_the_flat_result() {
        let n = 200u32;
        let edges = random_edges(n, 1500, 0xABCD);
        let filled = || {
            let mut b = StreamingGraphBuilder::with_chunk_capacity(n as usize, 128);
            for &(u, v) in &edges {
                b.add_edge(VertexId(u), VertexId(v)).unwrap();
            }
            b
        };
        let flat = filled().finish().unwrap();
        let compressed = filled().finish_compressed().unwrap();
        assert_eq!(compressed, CompressedCsr::from_csr(&flat));
        assert_eq!(compressed.to_csr(), flat);
    }

    #[test]
    fn self_loops_and_duplicates_collapse() {
        let mut b = StreamingGraphBuilder::with_chunk_capacity(4, 2);
        for (u, v) in [(0, 0), (0, 1), (1, 0), (0, 1), (2, 3), (3, 3)] {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        let g = b.finish().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(VertexId(0)), &[VertexId(1)]);
        assert_eq!(g.neighbors(VertexId(3)), &[VertexId(2)]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = StreamingGraphBuilder::new(3);
        assert!(b.add_edge(VertexId(0), VertexId(3)).is_err());
    }

    #[test]
    fn empty_and_isolated() {
        let b = StreamingGraphBuilder::new(0);
        assert_eq!(b.finish().unwrap().num_vertices(), 0);
        let mut b = StreamingGraphBuilder::new(5);
        b.add_edge(VertexId(1), VertexId(2)).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(VertexId(4)), 0);
    }

    #[test]
    fn spill_files_are_cleaned_up() {
        let mut b = StreamingGraphBuilder::with_chunk_capacity(50, 8);
        for (u, v) in random_edges(50, 200, 7) {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        assert!(b.spilled_runs() > 0);
        // Capture the run paths, finish, and verify they are gone.
        let paths: Vec<PathBuf> = b.runs.clone();
        let _ = b.finish().unwrap();
        for p in paths {
            assert!(!p.exists(), "{} not cleaned up", p.display());
        }
    }
}

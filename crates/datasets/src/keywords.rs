//! Zipf-distributed keyword assignment.
//!
//! Real keyword/term frequencies are head-heavy: a few terms ("graph",
//! "query") appear on many users, the long tail on few. Pruning behaviour
//! in the KTG search depends on exactly this selectivity skew, so the
//! synthetic assignment samples keyword ids from a Zipf(s) law over the
//! vocabulary. Implemented from scratch on the workspace's own seeded
//! PRNG (`ktg_common::rng` — the build is offline and dependency-free).

use ktg_common::rng::SplitMix64;
use ktg_common::{SeededRng, VertexId};
use ktg_keywords::{KeywordId, VertexKeywords, VertexKeywordsBuilder, Vocabulary};

/// A seeded Zipf sampler over ranks `0..n` with exponent `s`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
    total: f64,
}

impl ZipfSampler {
    /// Builds the cumulative table: `P(rank = i) ∝ 1 / (i + 1)^s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "empty support");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        ZipfSampler { total: acc, cumulative }
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut SeededRng) -> usize {
        let x = rng.gen_range(0.0..self.total);
        self.cumulative.partition_point(|&c| c <= x)
    }
}

/// Parameters for keyword assignment.
#[derive(Clone, Copy, Debug)]
pub struct KeywordModel {
    /// Vocabulary size `m = |κ|`.
    pub vocab_size: usize,
    /// Minimum keywords per vertex (inclusive).
    pub min_per_vertex: usize,
    /// Maximum keywords per vertex (inclusive).
    pub max_per_vertex: usize,
    /// Zipf exponent of term popularity (≈ 1 for natural language).
    pub zipf_exponent: f64,
}

impl Default for KeywordModel {
    fn default() -> Self {
        KeywordModel { vocab_size: 2000, min_per_vertex: 3, max_per_vertex: 8, zipf_exponent: 1.0 }
    }
}

/// Assigns every vertex a Zipf-sampled keyword set, returning the
/// synthetic vocabulary (`t0, t1, …` in popularity order) and the arena.
pub fn assign_zipf(
    num_vertices: usize,
    model: &KeywordModel,
    seed: u64,
) -> (Vocabulary, VertexKeywords) {
    assert!(model.min_per_vertex <= model.max_per_vertex, "inverted per-vertex range");
    assert!(model.vocab_size >= model.max_per_vertex, "vocabulary smaller than a keyword set");
    let vocab = Vocabulary::synthetic(model.vocab_size);
    let sampler = ZipfSampler::new(model.vocab_size, model.zipf_exponent);
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut builder = VertexKeywordsBuilder::new(num_vertices);
    let mut chosen: Vec<usize> = Vec::with_capacity(model.max_per_vertex);
    for v in 0..num_vertices {
        sample_keyword_set(&sampler, model, &mut rng, &mut chosen);
        for &k in &chosen {
            builder.add(VertexId::new(v), KeywordId(k as u32));
        }
    }
    (vocab, builder.build())
}


/// Samples one vertex's distinct keyword set into `chosen` (cleared
/// first) — the shared inner loop of both assignment paths.
fn sample_keyword_set(
    sampler: &ZipfSampler,
    model: &KeywordModel,
    rng: &mut SeededRng,
    chosen: &mut Vec<usize>,
) {
    let count = rng.gen_range(model.min_per_vertex..=model.max_per_vertex);
    chosen.clear();
    // Rejection-sample distinct keywords; the head is hot so a few
    // retries are expected.
    let mut guard = 0;
    while chosen.len() < count && guard < 64 * count {
        guard += 1;
        let k = sampler.sample(rng);
        if !chosen.contains(&k) {
            chosen.push(k);
        }
    }
}

/// Chunk-order-independent Zipf assignment: every vertex's keyword set is
/// drawn from an RNG derived from `(seed, v)`, so any vertex range can be
/// generated in isolation (the streaming 10M-vertex pipeline generates
/// keywords alongside graph chunks) and concatenating ranges reproduces
/// the whole-graph call bit for bit.
pub fn assign_zipf_chunked(
    num_vertices: usize,
    model: &KeywordModel,
    seed: u64,
) -> (Vocabulary, VertexKeywords) {
    let vocab = Vocabulary::synthetic(model.vocab_size);
    let sampler = ZipfSampler::new(model.vocab_size, model.zipf_exponent);
    let mut builder = VertexKeywordsBuilder::new(num_vertices);
    assign_zipf_range(&sampler, model, seed, 0..num_vertices, &mut builder);
    (vocab, builder.build())
}

/// The range form of [`assign_zipf_chunked`]: fills `builder` for
/// `vertices` only. Callers streaming a huge graph invoke this once per
/// chunk; the per-vertex derived seeds make the output identical to one
/// whole-range call.
pub fn assign_zipf_range(
    sampler: &ZipfSampler,
    model: &KeywordModel,
    seed: u64,
    vertices: std::ops::Range<usize>,
    builder: &mut VertexKeywordsBuilder,
) {
    assert!(model.min_per_vertex <= model.max_per_vertex, "inverted per-vertex range");
    assert!(model.vocab_size >= model.max_per_vertex, "vocabulary smaller than a keyword set");
    let mut chosen: Vec<usize> = Vec::with_capacity(model.max_per_vertex);
    for v in vertices {
        let mut sm = SplitMix64::new(seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = SeededRng::seed_from_u64(sm.next_u64());
        sample_keyword_set(sampler, model, &mut rng, &mut chosen);
        for &k in &chosen {
            builder.add(VertexId::new(v), KeywordId(k as u32));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;


    #[test]
    fn chunked_assignment_is_range_invariant() {
        let model = KeywordModel { vocab_size: 50, min_per_vertex: 2, max_per_vertex: 4, zipf_exponent: 1.0 };
        let (vocab, whole) = assign_zipf_chunked(40, &model, 77);
        assert_eq!(vocab.len(), 50);
        let sampler = ZipfSampler::new(model.vocab_size, model.zipf_exponent);
        let mut builder = VertexKeywordsBuilder::new(40);
        for chunk in [0..13usize, 13..14, 14..40] {
            assign_zipf_range(&sampler, &model, 77, chunk, &mut builder);
        }
        assert_eq!(builder.build(), whole, "chunk boundaries must not matter");
        let (_, reseeded) = assign_zipf_chunked(40, &model, 78);
        assert_ne!(reseeded, whole, "seed must matter");
    }

    #[test]
    fn chunked_assignment_respects_bounds() {
        let model = KeywordModel { vocab_size: 30, min_per_vertex: 1, max_per_vertex: 3, zipf_exponent: 1.1 };
        let (_, vk) = assign_zipf_chunked(200, &model, 5);
        for v in 0..200 {
            let len = vk.keywords(VertexId::new(v)).len();
            assert!((1..=3).contains(&len), "v{v} has {len} keywords");
        }
    }

    #[test]
    fn sampler_is_head_heavy() {
        let sampler = ZipfSampler::new(1000, 1.0);
        let mut rng = SeededRng::seed_from_u64(3);
        let mut head = 0;
        const DRAWS: usize = 10_000;
        for _ in 0..DRAWS {
            if sampler.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-10 of 1000 ranks carries ≈ H(10)/H(1000) ≈ 39% of the mass.
        assert!(head > DRAWS / 4, "head draws: {head}");
    }

    #[test]
    fn sampler_stays_in_range() {
        let sampler = ZipfSampler::new(5, 1.2);
        let mut rng = SeededRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn assignment_respects_bounds() {
        let model = KeywordModel { vocab_size: 100, min_per_vertex: 2, max_per_vertex: 5, zipf_exponent: 1.0 };
        let (vocab, vk) = assign_zipf(200, &model, 9);
        assert_eq!(vocab.len(), 100);
        assert_eq!(vk.num_vertices(), 200);
        for v in 0..200 {
            let n = vk.keywords(VertexId::new(v)).len();
            assert!((2..=5).contains(&n), "vertex {v} has {n} keywords");
        }
    }

    #[test]
    fn assignment_deterministic() {
        let model = KeywordModel::default();
        let (_, a) = assign_zipf(50, &model, 1);
        let (_, b) = assign_zipf(50, &model, 1);
        assert_eq!(a, b);
        let (_, c) = assign_zipf(50, &model, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let sampler = ZipfSampler::new(4, 0.0);
        let mut rng = SeededRng::seed_from_u64(5);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((1600..2400).contains(&c), "uniform-ish expected: {counts:?}");
        }
    }
}

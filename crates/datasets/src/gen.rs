//! Synthetic graph generators.
//!
//! Four classic models, all seeded and deterministic:
//!
//! * [`erdos_renyi`] — `G(n, m)`: `m` uniform random edges. The
//!   no-structure baseline.
//! * [`barabasi_albert`] — preferential attachment: each new vertex links
//!   to `m0` existing vertices with probability proportional to degree.
//!   Produces power-law degrees with exponent ≈ 3.
//! * [`watts_strogatz`] — ring lattice with rewiring: high clustering,
//!   small diameter.
//! * [`chung_lu`] — expected-degree model against an explicit power-law
//!   weight sequence: hits a target edge count while matching the heavy
//!   tail of real social networks. The dataset profiles use this.

use ktg_common::{FxHashSet, SeededRng, VertexId};
use ktg_graph::{CsrGraph, GraphBuilder};

/// `G(n, m)`: exactly `min(m, C(n,2))` distinct uniform random edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = SeededRng::seed_from_u64(seed);
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut builder = GraphBuilder::with_edge_capacity(n, m);
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    while seen.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            builder.add_edge_unchecked(VertexId(key.0), VertexId(key.1));
        }
    }
    builder.build()
}

/// Barabási–Albert preferential attachment: vertices `m0..n` each attach
/// to `m0` distinct existing vertices chosen proportionally to degree
/// (implemented with the classic repeated-endpoint trick: sampling a
/// uniform position in the half-edge list is degree-proportional).
pub fn barabasi_albert(n: usize, m0: usize, seed: u64) -> CsrGraph {
    assert!(m0 >= 1, "attachment count must be positive");
    assert!(n > m0, "need more vertices than the seed clique");
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    // Half-edge endpoint list: each vertex appears once per incident edge.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m0);

    // Seed: a (m0+1)-clique so every early vertex has degree ≥ m0.
    for u in 0..=m0 as u32 {
        for v in (u + 1)..=m0 as u32 {
            builder.add_edge_unchecked(VertexId(u), VertexId(v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    let mut targets: FxHashSet<u32> = FxHashSet::default();
    for v in (m0 + 1)..n {
        targets.clear();
        // Rejection-sample m0 distinct degree-proportional targets.
        while targets.len() < m0 {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            targets.insert(t);
        }
        for &t in &targets {
            builder.add_edge_unchecked(VertexId(v as u32), VertexId(t));
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    builder.build()
}

/// Watts–Strogatz small world: ring lattice where each vertex connects to
/// its `k/2` nearest neighbors on each side, then each edge is rewired to
/// a uniform random endpoint with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "lattice degree k must be even and ≥ 2");
    assert!(n > k, "need n > k");
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut edges: FxHashSet<(u32, u32)> = FxHashSet::default();
    let canon = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };
    for u in 0..n as u32 {
        for j in 1..=(k / 2) as u32 {
            let v = (u + j) % n as u32;
            edges.insert(canon(u, v));
        }
    }
    let lattice: Vec<(u32, u32)> = {
        let mut v: Vec<_> = edges.iter().copied().collect();
        v.sort_unstable(); // determinism: iterate in canonical order
        v
    };
    for (u, v) in lattice {
        if rng.gen_bool(beta) {
            // Rewire the far endpoint.
            for _ in 0..16 {
                let w = rng.gen_range(0..n as u32);
                let cand = canon(u, w);
                if w != u && !edges.contains(&cand) {
                    edges.remove(&canon(u, v));
                    edges.insert(cand);
                    break;
                }
            }
        }
    }
    let mut builder = GraphBuilder::with_edge_capacity(n, edges.len());
    for (u, v) in edges {
        builder.add_edge_unchecked(VertexId(u), VertexId(v));
    }
    builder.build()
}

/// Chung–Lu expected-degree power-law graph.
///
/// Weights `w_i ∝ (i + i0)^(−1/(γ−1))` give a degree exponent of `γ`; the
/// edge-sampling loop draws `target_m` endpoint pairs proportionally to
/// weight, skipping duplicates, so the realized edge count lands slightly
/// under `target_m` on dense heads (matching how the real datasets were
/// thinned in scaling).
pub fn chung_lu(n: usize, target_m: usize, gamma: f64, seed: u64) -> CsrGraph {
    assert!(gamma > 2.0, "degree exponent must exceed 2 for finite mean");
    let mut rng = SeededRng::seed_from_u64(seed);
    let exponent = -1.0 / (gamma - 1.0);
    // Offset i0 tames the head so the max weight stays realizable.
    let i0 = 1.0 + (n as f64).powf(0.25);
    let weights: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(exponent)).collect();
    // Cumulative table for O(log n) weighted sampling.
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cumulative.push(acc);
    }
    let total = acc;

    let sample = |rng: &mut SeededRng| -> u32 {
        let x = rng.gen_range(0.0..total);
        cumulative.partition_point(|&c| c <= x) as u32
    };

    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let target_m = target_m.min(max_edges);
    let mut edges: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut attempts = 0usize;
    let attempt_cap = target_m.saturating_mul(20).max(1000);
    while edges.len() < target_m && attempts < attempt_cap {
        attempts += 1;
        let u = sample(&mut rng);
        let v = sample(&mut rng);
        if u == v {
            continue;
        }
        edges.insert(if u < v { (u, v) } else { (v, u) });
    }
    let mut builder = GraphBuilder::with_edge_capacity(n, edges.len());
    for (u, v) in edges {
        builder.add_edge_unchecked(VertexId(u), VertexId(v));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktg_graph::stats;

    #[test]
    fn erdos_renyi_exact_edge_count() {
        let g = erdos_renyi(100, 300, 7);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn erdos_renyi_caps_at_complete_graph() {
        let g = erdos_renyi(5, 1000, 7);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(erdos_renyi(50, 100, 42), erdos_renyi(50, 100, 42));
        assert_eq!(barabasi_albert(50, 3, 42), barabasi_albert(50, 3, 42));
        assert_eq!(watts_strogatz(50, 4, 0.1, 42), watts_strogatz(50, 4, 0.1, 42));
        assert_eq!(chung_lu(50, 120, 2.5, 42), chung_lu(50, 120, 2.5, 42));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(erdos_renyi(50, 100, 1), erdos_renyi(50, 100, 2));
    }

    #[test]
    fn barabasi_albert_min_degree() {
        let g = barabasi_albert(200, 3, 9);
        // Every non-seed vertex attaches to 3 targets; degrees ≥ 3.
        let s = stats::degree_stats(&g);
        assert!(s.min >= 3, "min degree {}", s.min);
        assert!(s.max > 10, "hubs should emerge, max {}", s.max);
    }

    #[test]
    fn watts_strogatz_keeps_edge_count() {
        let n = 100;
        let k = 6;
        let g = watts_strogatz(n, k, 0.2, 5);
        // Rewiring preserves the lattice edge count (n·k/2) unless a
        // rewire attempt fails; allow a tiny deficit.
        let expected = n * k / 2;
        assert!(g.num_edges() >= expected - 5 && g.num_edges() <= expected);
    }

    #[test]
    fn chung_lu_hits_target_and_skews() {
        let g = chung_lu(500, 1500, 2.5, 11);
        assert!(g.num_edges() > 1300, "realized {} edges", g.num_edges());
        let s = stats::degree_stats(&g);
        assert!(
            s.max as f64 > 4.0 * s.mean,
            "power law should produce hubs: max {} mean {}",
            s.max,
            s.mean
        );
    }
}

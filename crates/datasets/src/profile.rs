//! Named dataset profiles mirroring the paper's evaluation graphs.
//!
//! §VII evaluates on four base datasets plus two scalability graphs:
//!
//! | dataset    | nodes     | edges     | role                    |
//! |------------|-----------|-----------|-------------------------|
//! | DBLP       | 200,000   | 1,228,923 | co-authorship           |
//! | Gowalla    | 67,320    | 559,200   | location social network |
//! | Brightkite | 58,288    | 214,038   | location social network |
//! | Flickr     | 157,681   | 1,344,397 | media social network    |
//! | Twitter    | 81,306    | 1,768,149 | denser graph (Fig 7a)   |
//! | DBLP-1M    | 1,000,000 | ~6.1M     | large graph (Fig 7b)    |
//!
//! A profile instantiates as a Chung–Lu power-law graph matching the
//! (scaled) node/edge counts plus a Zipf keyword assignment. The paper's
//! testbed had 120 GB of RAM because NL/NLRNL storage grows toward n²/2;
//! the `scale` divisor keeps index experiments laptop-sized while
//! preserving density, degree skew, and hop structure (DESIGN.md §4).

use crate::gen;
use crate::keywords::{self, KeywordModel};
use ktg_core::AttributedGraph;

/// The paper's evaluation datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// DBLP co-authorship: 200k nodes, 1.23M edges.
    Dblp,
    /// Gowalla: 67,320 nodes, 559,200 edges.
    Gowalla,
    /// Brightkite: 58,288 nodes, 214,038 edges.
    Brightkite,
    /// Flickr: 157,681 nodes, 1,344,397 edges.
    Flickr,
    /// Twitter (denser, Fig 7a): 81,306 nodes, 1,768,149 edges.
    Twitter,
    /// The 1M-node DBLP variant (Fig 7b); edge count extrapolated at
    /// DBLP's density.
    DblpLarge,
}

impl DatasetProfile {
    /// All four primary datasets, in the order the paper's figures use.
    pub const PRIMARY: [DatasetProfile; 4] = [
        DatasetProfile::Gowalla,
        DatasetProfile::Brightkite,
        DatasetProfile::Flickr,
        DatasetProfile::Dblp,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfile::Dblp => "dblp",
            DatasetProfile::Gowalla => "gowalla",
            DatasetProfile::Brightkite => "brightkite",
            DatasetProfile::Flickr => "flickr",
            DatasetProfile::Twitter => "twitter",
            DatasetProfile::DblpLarge => "dblp-1m",
        }
    }

    /// Full-scale `(nodes, edges)` as reported in §VII.
    pub fn full_size(self) -> (usize, usize) {
        match self {
            DatasetProfile::Dblp => (200_000, 1_228_923),
            DatasetProfile::Gowalla => (67_320, 559_200),
            DatasetProfile::Brightkite => (58_288, 214_038),
            DatasetProfile::Flickr => (157_681, 1_344_397),
            DatasetProfile::Twitter => (81_306, 1_768_149),
            DatasetProfile::DblpLarge => (1_000_000, 6_144_615),
        }
    }

    /// The keyword model paired with this dataset (vocabulary scales
    /// roughly with graph size; per-vertex counts follow typical profile
    /// lengths).
    pub fn keyword_model(self, scale: usize) -> KeywordModel {
        let (nodes, _) = self.full_size();
        let scaled_nodes = (nodes / scale.max(1)).max(64);
        KeywordModel {
            // ~1 keyword type per 20 users, clamped to a practical band.
            vocab_size: (scaled_nodes / 20).clamp(200, 10_000),
            min_per_vertex: 3,
            max_per_vertex: 8,
            zipf_exponent: 1.0,
        }
    }

    /// Instantiates the profile at `1/scale` of full size (`scale = 1` is
    /// the paper's size). Deterministic in `seed`.
    pub fn instantiate(self, scale: usize, seed: u64) -> AttributedGraph {
        let scale = scale.max(1);
        let (nodes, edges) = self.full_size();
        let n = (nodes / scale).max(64);
        let m = (edges / scale).max(128);
        // Seed-split so topology and keywords are independent draws.
        let graph = gen::chung_lu(n, m, 2.5, seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let model = self.keyword_model(scale);
        let (vocab, vk) = keywords::assign_zipf(n, &model, seed.wrapping_mul(0x85EB_CA6B).wrapping_add(2));
        AttributedGraph::new(graph, vocab, vk)
    }
}

impl std::fmt::Display for DatasetProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktg_graph::stats;

    #[test]
    fn scaled_sizes_track_targets() {
        let net = DatasetProfile::Brightkite.instantiate(40, 7);
        let (nodes, edges) = DatasetProfile::Brightkite.full_size();
        let n = net.num_vertices();
        let m = net.graph().num_edges();
        assert_eq!(n, nodes / 40);
        // Chung–Lu may fall slightly short of the target edge count.
        assert!(m as f64 > 0.85 * (edges / 40) as f64, "m = {m}");
        assert!(m <= edges / 40);
    }

    #[test]
    fn density_preserved_across_scales() {
        let a = DatasetProfile::Gowalla.instantiate(20, 3);
        let b = DatasetProfile::Gowalla.instantiate(40, 3);
        let da = stats::degree_stats(a.graph()).mean;
        let db = stats::degree_stats(b.graph()).mean;
        assert!((da - db).abs() / da < 0.25, "mean degree drifted: {da} vs {db}");
    }

    #[test]
    fn instantiation_is_deterministic() {
        let a = DatasetProfile::Twitter.instantiate(100, 5);
        let b = DatasetProfile::Twitter.instantiate(100, 5);
        assert_eq!(a.graph(), b.graph());
        assert_eq!(a.keywords(), b.keywords());
    }

    #[test]
    fn twitter_denser_than_brightkite() {
        let t = DatasetProfile::Twitter.instantiate(50, 1);
        let b = DatasetProfile::Brightkite.instantiate(50, 1);
        let dt = stats::degree_stats(t.graph()).mean;
        let db = stats::degree_stats(b.graph()).mean;
        assert!(dt > 2.0 * db, "twitter {dt} vs brightkite {db}");
    }

    #[test]
    fn names_and_display() {
        assert_eq!(DatasetProfile::Dblp.name(), "dblp");
        assert_eq!(DatasetProfile::DblpLarge.to_string(), "dblp-1m");
        assert_eq!(DatasetProfile::PRIMARY.len(), 4);
    }

    #[test]
    fn keywords_cover_every_vertex() {
        let net = DatasetProfile::Gowalla.instantiate(100, 1);
        for v in 0..net.num_vertices() {
            assert!(
                !net.keywords().keywords(ktg_common::VertexId::new(v)).is_empty(),
                "vertex {v} has no keywords"
            );
        }
    }
}

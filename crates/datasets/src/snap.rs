//! Real-dataset ingestion.
//!
//! When the genuine SNAP files (Gowalla, Brightkite, …) are on disk, this
//! module loads them and equips them with the same synthetic keyword model
//! the profiles use, so every experiment runs unchanged on real topology.

use crate::keywords::{self, KeywordModel};
use ktg_common::Result;
use ktg_core::AttributedGraph;
use ktg_graph::io;
use std::fs::File;
use std::path::Path;

/// Loads a SNAP edge-list file and attaches Zipf keywords.
///
/// # Errors
/// I/O and parse errors from the underlying reader.
pub fn load_with_keywords(
    path: impl AsRef<Path>,
    model: &KeywordModel,
    seed: u64,
) -> Result<AttributedGraph> {
    let file = File::open(path.as_ref())?;
    let loaded = io::read_edge_list(file)?;
    let n = loaded.graph.num_vertices();
    let (vocab, vk) = keywords::assign_zipf(n, model, seed);
    Ok(AttributedGraph::new(loaded.graph, vocab, vk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn load_roundtrip_through_tempfile() {
        let dir = std::env::temp_dir().join("ktg-snap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "# tiny test graph").unwrap();
        for (u, v) in [(1u32, 2u32), (2, 3), (3, 4), (4, 1), (1, 3)] {
            writeln!(f, "{u}\t{v}").unwrap();
        }
        drop(f);

        let model = KeywordModel { vocab_size: 50, min_per_vertex: 1, max_per_vertex: 3, zipf_exponent: 1.0 };
        let net = load_with_keywords(&path, &model, 7).unwrap();
        assert_eq!(net.num_vertices(), 4);
        assert_eq!(net.graph().num_edges(), 5);
        for v in 0..4 {
            assert!(!net.keywords().keywords(ktg_common::VertexId::new(v)).is_empty());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let model = KeywordModel::default();
        assert!(load_with_keywords("/nonexistent/nope.txt", &model, 1).is_err());
    }
}

//! # `ktg-datasets`
//!
//! Dataset substrate for the KTG (ICDE 2023) reproduction.
//!
//! The paper evaluates on real SNAP/DBLP graphs (58k–1M vertices) with
//! keyword profiles mined from user data. Neither is redistributable
//! here, so this crate builds the closest synthetic equivalents — the
//! substitution rationale is in DESIGN.md §4:
//!
//! * [`gen`] — graph generators built from scratch: Erdős–Rényi `G(n, m)`,
//!   Barabási–Albert preferential attachment, Watts–Strogatz small-world,
//!   and Chung–Lu power-law (the default for dataset profiles, since it
//!   matches a target degree distribution *and* edge count).
//! * [`keywords`] — Zipf-distributed keyword assignment over a synthetic
//!   vocabulary, reproducing the head-heavy selectivity of real term
//!   distributions.
//! * [`profile`] — named [`profile::DatasetProfile`]s mirroring each
//!   evaluation dataset's `(n, m)` (DBLP, Gowalla, Brightkite, Flickr,
//!   Twitter, DBLP-1M) with a `scale` knob for laptop-sized runs.
//! * [`workload`] — the §VII query workload: seeded batches of random
//!   queries with frequency-weighted keyword selection.
//! * [`snap`] — loads real SNAP edge lists (when available) and equips
//!   them with synthetic keywords, so genuine datasets drop in unchanged.
//!
//! Everything is deterministic under a caller-supplied seed.


#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod keywords;
pub mod profile;
pub mod sbm;
pub mod snap;
pub mod validate;
pub mod workload;

pub use profile::DatasetProfile;
pub use workload::{zipf_indices, QueryGen};

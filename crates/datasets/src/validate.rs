//! Dataset validation.
//!
//! A scaled synthetic profile is only a valid stand-in for its real
//! counterpart if the properties the algorithms are sensitive to survive
//! the substitution: density, degree skew, reachable hop structure, and
//! keyword selectivity. [`validate`] measures all four and reports
//! violations; the integration tests run it on every profile so a
//! generator regression cannot silently distort the benchmark shapes.

use ktg_core::AttributedGraph;
use ktg_graph::stats;
use ktg_keywords::KeywordId;

/// Target envelope for a generated dataset.
#[derive(Clone, Copy, Debug)]
pub struct Expectations {
    /// Expected vertex count (exact).
    pub nodes: usize,
    /// Minimum acceptable edge count (generators may fall slightly short
    /// of targets; they must never exceed them).
    pub min_edges: usize,
    /// Maximum acceptable edge count.
    pub max_edges: usize,
    /// Required degree skew: `max_degree ≥ skew × mean_degree`.
    pub min_degree_skew: f64,
    /// Maximum mean hop distance over sampled pairs (small-world check).
    pub max_mean_hops: f64,
    /// Required keyword selectivity skew: the most frequent keyword must
    /// be carried by at least this multiple of the mean frequency.
    pub min_keyword_skew: f64,
}

impl Expectations {
    /// The envelope appropriate for a scaled social-network profile.
    pub fn social(nodes: usize, target_edges: usize) -> Self {
        Expectations {
            nodes,
            min_edges: (target_edges as f64 * 0.8) as usize,
            max_edges: target_edges,
            min_degree_skew: 3.0,
            max_mean_hops: 6.0,
            min_keyword_skew: 3.0,
        }
    }
}

/// A validation report: empty `violations` means the dataset passed.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Human-readable descriptions of each violated expectation.
    pub violations: Vec<String>,
    /// Measured mean degree.
    pub mean_degree: f64,
    /// Measured max/mean degree ratio.
    pub degree_skew: f64,
    /// Measured mean hops over sampled sources.
    pub mean_hops: f64,
    /// Measured max/mean keyword frequency ratio.
    pub keyword_skew: f64,
}

impl Report {
    /// Whether every expectation held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Validates `net` against `exp`.
pub fn validate(net: &AttributedGraph, exp: &Expectations) -> Report {
    let mut report = Report::default();
    let graph = net.graph();

    if graph.num_vertices() != exp.nodes {
        report
            .violations
            .push(format!("nodes: got {}, expected {}", graph.num_vertices(), exp.nodes));
    }
    let m = graph.num_edges();
    if m < exp.min_edges || m > exp.max_edges {
        report.violations.push(format!(
            "edges: got {m}, expected {}..={}",
            exp.min_edges, exp.max_edges
        ));
    }

    let deg = stats::degree_stats(graph);
    report.mean_degree = deg.mean;
    report.degree_skew = if deg.mean > 0.0 { deg.max as f64 / deg.mean } else { 0.0 };
    if report.degree_skew < exp.min_degree_skew {
        report.violations.push(format!(
            "degree skew: got {:.2}, expected ≥ {:.2}",
            report.degree_skew, exp.min_degree_skew
        ));
    }

    let hops = stats::sample_hop_stats(graph, 16);
    report.mean_hops = hops.mean_hops;
    if hops.mean_hops > exp.max_mean_hops {
        report.violations.push(format!(
            "mean hops: got {:.2}, expected ≤ {:.2}",
            hops.mean_hops, exp.max_mean_hops
        ));
    }

    let freqs: Vec<usize> = (0..net.vocab().len())
        .map(|k| net.inverted().frequency(KeywordId(k as u32)))
        .collect();
    let used: Vec<usize> = freqs.iter().copied().filter(|&f| f > 0).collect();
    if used.is_empty() {
        report.violations.push("keywords: no keyword is carried by any vertex".to_string());
    } else {
        let mean = used.iter().sum::<usize>() as f64 / used.len() as f64;
        let max = used.iter().max().copied().unwrap_or(0) as f64;
        report.keyword_skew = max / mean;
        if report.keyword_skew < exp.min_keyword_skew {
            report.violations.push(format!(
                "keyword skew: got {:.2}, expected ≥ {:.2}",
                report.keyword_skew, exp.min_keyword_skew
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DatasetProfile;

    #[test]
    fn scaled_profiles_pass_their_envelope() {
        for profile in DatasetProfile::PRIMARY {
            let scale = 200;
            let net = profile.instantiate(scale, 42);
            let (nodes, edges) = profile.full_size();
            let exp = Expectations::social(nodes / scale, edges / scale);
            let report = validate(&net, &exp);
            assert!(
                report.passed(),
                "{profile} failed validation: {:?} (report {report:?})",
                report.violations
            );
        }
    }

    #[test]
    fn wrong_node_count_is_flagged() {
        let net = DatasetProfile::Gowalla.instantiate(200, 42);
        let exp = Expectations { nodes: 1, ..Expectations::social(1, 1000) };
        let report = validate(&net, &exp);
        assert!(!report.passed());
        assert!(report.violations.iter().any(|v| v.starts_with("nodes")));
    }

    #[test]
    fn uniform_graph_fails_skew() {
        // A ring has degree skew exactly 1.
        let graph = crate::gen::watts_strogatz(100, 4, 0.0, 1);
        let (vocab, vk) = crate::keywords::assign_zipf(
            100,
            &crate::keywords::KeywordModel {
                vocab_size: 50,
                min_per_vertex: 2,
                max_per_vertex: 4,
                zipf_exponent: 1.0,
            },
            1,
        );
        let net = AttributedGraph::new(graph, vocab, vk);
        let exp = Expectations::social(100, 200);
        let report = validate(&net, &exp);
        assert!(report.violations.iter().any(|v| v.starts_with("degree skew")), "{report:?}");
    }
}

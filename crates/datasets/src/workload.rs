//! Query workload generation (paper §VII).
//!
//! "We randomly generate four groups of queries corresponding to each
//! dataset where each group consists of 100 queries." A [`QueryGen`]
//! reproduces that: seeded batches of query keyword sets of a given size,
//! sampled from the dataset's vocabulary **weighted by document
//! frequency** — uniform sampling over a Zipf vocabulary would mostly
//! pick tail terms carried by almost nobody, yielding degenerate queries
//! with empty candidate sets.

use ktg_common::{KtgError, Result, SeededRng};
use ktg_core::AttributedGraph;
use ktg_keywords::{KeywordId, QueryKeywords};

/// Seeded generator of query keyword sets for one attributed network.
pub struct QueryGen {
    /// Frequency-weighted cumulative table over keyword ids.
    cumulative: Vec<f64>,
    total: f64,
    rng: SeededRng,
}

impl QueryGen {
    /// Builds a generator for `net`, weighting keywords by how many
    /// vertices carry them.
    pub fn new(net: &AttributedGraph, seed: u64) -> Self {
        let m = net.vocab().len();
        let mut cumulative = Vec::with_capacity(m);
        let mut acc = 0.0;
        for k in 0..m {
            // +0.01 keeps unused vocabulary sampleable with tiny odds
            // (mirrors queries occasionally asking for rare expertise).
            acc += net.inverted().frequency(KeywordId(k as u32)) as f64 + 0.01;
            cumulative.push(acc);
        }
        QueryGen { total: acc, cumulative, rng: SeededRng::seed_from_u64(seed) }
    }

    /// Draws one query keyword set of `size` distinct keywords.
    ///
    /// # Errors
    /// [`KtgError::InvalidInput`] if `size` is 0, exceeds 64 or the
    /// vocabulary, or if sampling cannot find `size` distinct keywords.
    pub fn query(&mut self, size: usize) -> Result<QueryKeywords> {
        if !(1..=64).contains(&size) {
            return Err(KtgError::input(format!("query size {size} out of range 1..=64")));
        }
        if size > self.cumulative.len() {
            return Err(KtgError::input(format!(
                "query size {size} exceeds the vocabulary ({} keywords)",
                self.cumulative.len()
            )));
        }
        let mut ids: Vec<KeywordId> = Vec::with_capacity(size);
        let mut guard = 0;
        while ids.len() < size {
            guard += 1;
            if guard >= 10_000 {
                return Err(KtgError::input(
                    "query sampling failed to find distinct keywords",
                ));
            }
            let x = self.rng.gen_range(0.0..self.total);
            let k = KeywordId(self.cumulative.partition_point(|&c| c <= x) as u32);
            if !ids.contains(&k) {
                ids.push(k);
            }
        }
        QueryKeywords::new(ids)
    }

    /// Draws a batch of `count` queries (the paper's 100-query groups).
    ///
    /// # Errors
    /// Propagates the first [`QueryGen::query`] failure.
    pub fn batch(&mut self, count: usize, size: usize) -> Result<Vec<QueryKeywords>> {
        (0..count).map(|_| self.query(size)).collect()
    }
}

/// Expands a pool of `pool_len` distinct queries into a serving-workload
/// index sequence of length `len` whose repeat frequencies follow a
/// Zipf law: pool index `i` is drawn with probability ∝ `1/(i+1)^s`.
///
/// Real query streams are heavily skewed — a few hot queries dominate —
/// which is exactly the regime a result cache exploits. The qps bench
/// maps these indices back onto its distinct query pool.
///
/// # Panics
/// Panics if `pool_len` is 0 or `exponent` is not finite.
pub fn zipf_indices(pool_len: usize, len: usize, exponent: f64, seed: u64) -> Vec<usize> {
    assert!(pool_len > 0, "zipf_indices needs a non-empty pool");
    assert!(exponent.is_finite(), "zipf exponent must be finite");
    let mut cumulative = Vec::with_capacity(pool_len);
    let mut acc = 0.0;
    for i in 0..pool_len {
        acc += (i as f64 + 1.0).powf(-exponent);
        cumulative.push(acc);
    }
    let mut rng = SeededRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let x = rng.gen_range(0.0..acc);
            cumulative.partition_point(|&c| c <= x).min(pool_len - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DatasetProfile;

    fn net() -> AttributedGraph {
        DatasetProfile::Brightkite.instantiate(200, 11)
    }

    #[test]
    fn queries_have_requested_size() {
        let net = net();
        let mut qg = QueryGen::new(&net, 1);
        for size in [4usize, 6, 8] {
            let q = qg.query(size).expect("valid size");
            assert_eq!(q.len(), size);
        }
    }

    #[test]
    fn batch_is_deterministic_by_seed() {
        let net = net();
        let a: Vec<_> = QueryGen::new(&net, 5).batch(10, 6).expect("valid batch");
        let b: Vec<_> = QueryGen::new(&net, 5).batch(10, 6).expect("valid batch");
        assert_eq!(a, b);
        let c: Vec<_> = QueryGen::new(&net, 6).batch(10, 6).expect("valid batch");
        assert_ne!(a, c);
    }

    #[test]
    fn frequency_weighting_yields_nonempty_candidates() {
        let net = net();
        let mut qg = QueryGen::new(&net, 2);
        let mut nonempty = 0;
        for _ in 0..20 {
            let q = qg.query(6).expect("valid size");
            let masks = net.compile(&q);
            if !masks.candidates().is_empty() {
                nonempty += 1;
            }
        }
        assert!(nonempty >= 19, "only {nonempty}/20 queries had candidates");
    }

    #[test]
    fn zero_size_is_an_error() {
        let net = net();
        assert!(QueryGen::new(&net, 0).query(0).is_err());
        assert!(QueryGen::new(&net, 0).query(65).is_err());
    }

    #[test]
    fn zipf_indices_are_deterministic_and_in_range() {
        let a = zipf_indices(10, 200, 1.1, 3);
        let b = zipf_indices(10, 200, 1.1, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a.iter().all(|&i| i < 10));
        let c = zipf_indices(10, 200, 1.1, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_indices_skew_toward_the_head() {
        let draws = zipf_indices(16, 2000, 1.2, 9);
        let head = draws.iter().filter(|&&i| i == 0).count();
        let tail = draws.iter().filter(|&&i| i == 15).count();
        assert!(
            head > 4 * tail.max(1),
            "head index should dominate ({head} vs {tail})"
        );
        // Skew implies repeats: far fewer distinct values than draws.
        let mut distinct = draws.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 16);
    }

    #[test]
    #[should_panic(expected = "non-empty pool")]
    fn zipf_empty_pool_panics() {
        zipf_indices(0, 5, 1.0, 1);
    }
}

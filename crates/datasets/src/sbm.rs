//! Planted-partition (stochastic block model) graphs.
//!
//! Tenuous-group queries interact with community structure: inside a
//! community almost every pair is within 2 hops, so feasible groups must
//! straddle communities. The paper's datasets have natural communities;
//! the Chung–Lu profiles reproduce degree skew but not modularity. This
//! generator fills that gap for the community-structure ablation bench
//! (`ablations::community_structure`): `blocks` equally sized communities
//! with intra-community edge probability `p_in` and inter-community
//! probability `p_out`.

use ktg_common::{SeededRng, VertexId};
use ktg_graph::{CsrGraph, GraphBuilder};

/// Parameters of a planted-partition graph.
#[derive(Clone, Copy, Debug)]
pub struct SbmParams {
    /// Number of vertices.
    pub n: usize,
    /// Number of equally sized communities (the last takes the remainder).
    pub blocks: usize,
    /// Intra-community edge probability.
    pub p_in: f64,
    /// Inter-community edge probability.
    pub p_out: f64,
}

impl SbmParams {
    /// A strongly modular default: dense blocks, sparse cut.
    pub fn modular(n: usize, blocks: usize) -> Self {
        SbmParams { n, blocks, p_in: 0.2, p_out: 0.005 }
    }
}

/// The community label of vertex `v` under equal-size blocking.
pub fn block_of(params: &SbmParams, v: VertexId) -> usize {
    let size = params.n.div_ceil(params.blocks);
    (v.index() / size).min(params.blocks - 1)
}

/// Generates a planted-partition graph. Deterministic in `seed`.
///
/// # Panics
/// Panics when `blocks` is zero or exceeds `n`, or probabilities are
/// outside `[0, 1]`.
pub fn planted_partition(params: &SbmParams, seed: u64) -> CsrGraph {
    assert!(params.blocks >= 1 && params.blocks <= params.n, "invalid block count");
    assert!((0.0..=1.0).contains(&params.p_in), "p_in out of range");
    assert!((0.0..=1.0).contains(&params.p_out), "p_out out of range");
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(params.n);
    for u in 0..params.n {
        let bu = block_of(params, VertexId::new(u));
        for v in (u + 1)..params.n {
            let p = if bu == block_of(params, VertexId::new(v)) {
                params.p_in
            } else {
                params.p_out
            };
            if p > 0.0 && rng.gen_bool(p) {
                builder.add_edge_unchecked(VertexId::new(u), VertexId::new(v));
            }
        }
    }
    builder.build()
}

/// The fraction of edges that stay inside a community — a cheap modularity
/// proxy used by tests and the ablation bench.
pub fn intra_fraction(params: &SbmParams, graph: &CsrGraph) -> f64 {
    let mut intra = 0usize;
    let mut total = 0usize;
    for (u, v) in graph.edges() {
        total += 1;
        if block_of(params, u) == block_of(params, v) {
            intra += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    intra as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = SbmParams::modular(100, 4);
        assert_eq!(planted_partition(&p, 3), planted_partition(&p, 3));
        assert_ne!(planted_partition(&p, 3), planted_partition(&p, 4));
    }

    #[test]
    fn modular_graph_is_mostly_intra() {
        let p = SbmParams::modular(200, 4);
        let g = planted_partition(&p, 7);
        let frac = intra_fraction(&p, &g);
        assert!(frac > 0.8, "intra fraction {frac}");
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn uniform_probabilities_are_not_modular() {
        let p = SbmParams { n: 200, blocks: 4, p_in: 0.05, p_out: 0.05 };
        let g = planted_partition(&p, 7);
        let frac = intra_fraction(&p, &g);
        // 4 equal blocks: ~24.6% of pairs are intra.
        assert!(frac < 0.4, "intra fraction {frac}");
    }

    #[test]
    fn blocks_partition_the_vertices() {
        let p = SbmParams::modular(10, 3);
        let labels: Vec<usize> = (0..10).map(|v| block_of(&p, VertexId::new(v))).collect();
        assert_eq!(labels, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn zero_out_probability_disconnects_blocks() {
        let p = SbmParams { n: 60, blocks: 3, p_in: 0.5, p_out: 0.0 };
        let g = planted_partition(&p, 11);
        let comps = ktg_graph::components::Components::compute(&g);
        assert!(comps.count() >= 3, "blocks must stay disconnected, got {}", comps.count());
        assert!((intra_fraction(&p, &g) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid block count")]
    fn zero_blocks_panics() {
        planted_partition(&SbmParams { n: 10, blocks: 0, p_in: 0.1, p_out: 0.1 }, 1);
    }
}

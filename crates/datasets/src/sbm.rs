//! Planted-partition (stochastic block model) graphs.
//!
//! Tenuous-group queries interact with community structure: inside a
//! community almost every pair is within 2 hops, so feasible groups must
//! straddle communities. The paper's datasets have natural communities;
//! the Chung–Lu profiles reproduce degree skew but not modularity. This
//! generator fills that gap for the community-structure ablation bench
//! (`ablations::community_structure`): `blocks` equally sized communities
//! with intra-community edge probability `p_in` and inter-community
//! probability `p_out`.

use ktg_common::rng::SplitMix64;
use ktg_common::{Result, SeededRng, VertexId};
use ktg_graph::{CompressedCsr, CsrGraph, GraphBuilder, StreamingGraphBuilder};

/// Parameters of a planted-partition graph.
#[derive(Clone, Copy, Debug)]
pub struct SbmParams {
    /// Number of vertices.
    pub n: usize,
    /// Number of equally sized communities (the last takes the remainder).
    pub blocks: usize,
    /// Intra-community edge probability.
    pub p_in: f64,
    /// Inter-community edge probability.
    pub p_out: f64,
}

impl SbmParams {
    /// A strongly modular default: dense blocks, sparse cut.
    pub fn modular(n: usize, blocks: usize) -> Self {
        SbmParams { n, blocks, p_in: 0.2, p_out: 0.005 }
    }
}

/// The community label of vertex `v` under equal-size blocking.
pub fn block_of(params: &SbmParams, v: VertexId) -> usize {
    let size = params.n.div_ceil(params.blocks);
    (v.index() / size).min(params.blocks - 1)
}

/// Generates a planted-partition graph. Deterministic in `seed`.
///
/// # Panics
/// Panics when `blocks` is zero or exceeds `n`, or probabilities are
/// outside `[0, 1]`.
pub fn planted_partition(params: &SbmParams, seed: u64) -> CsrGraph {
    assert!(params.blocks >= 1 && params.blocks <= params.n, "invalid block count");
    assert!((0.0..=1.0).contains(&params.p_in), "p_in out of range");
    assert!((0.0..=1.0).contains(&params.p_out), "p_out out of range");
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(params.n);
    for u in 0..params.n {
        let bu = block_of(params, VertexId::new(u));
        for v in (u + 1)..params.n {
            let p = if bu == block_of(params, VertexId::new(v)) {
                params.p_in
            } else {
                params.p_out
            };
            if p > 0.0 && rng.gen_bool(p) {
                builder.add_edge_unchecked(VertexId::new(u), VertexId::new(v));
            }
        }
    }
    builder.build()
}


/// Derives an independent RNG for one block-pair region. Seeding by
/// `(seed, region)` — not by a shared stream — is what makes the chunked
/// generator's output independent of region visit order and chunk size.
fn region_rng(seed: u64, region: u64) -> SeededRng {
    let mut sm = SplitMix64::new(seed ^ region.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    SeededRng::seed_from_u64(sm.next_u64())
}

/// Visits every sampled index of a Bernoulli(p) process over `0..total`
/// by geometric skips — O(hits) instead of O(total) coin flips, which is
/// what keeps sparse 10M-vertex regions cheap.
fn for_each_hit<F: FnMut(u64)>(total: u64, p: f64, rng: &mut SeededRng, mut f: F) {
    if total == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..total {
            f(i);
        }
        return;
    }
    let ln_q = (1.0 - p).ln();
    let mut i = 0u64;
    loop {
        // skips ~ Geometric(p): misses before the next hit.
        let skip = ((1.0 - rng.gen_f64()).ln() / ln_q).floor();
        if !skip.is_finite() || skip >= (total - i) as f64 {
            return;
        }
        i += skip as u64;
        f(i);
        i += 1;
        if i >= total {
            return;
        }
    }
}

/// Unranks pair index `t` of the upper triangle over `0..s` into `(a, b)`
/// with `a < b`. The float estimate is corrected by integer search, so
/// the result is exact for every region size the f64 mantissa can seed.
fn tri_unrank(t: u64, s: u64) -> (u64, u64) {
    let before = |a: u64| a * (s - 1) - a.saturating_sub(1) * a / 2;
    let sf = s as f64 - 0.5;
    let mut a = (sf - (sf * sf - 2.0 * t as f64).max(0.0).sqrt()).max(0.0) as u64;
    a = a.min(s.saturating_sub(2));
    while a + 2 < s && before(a + 1) <= t {
        a += 1;
    }
    while a > 0 && before(a) > t {
        a -= 1;
    }
    (a, a + 1 + (t - before(a)))
}

/// The half-open vertex span of block `b` under equal-size blocking
/// (mirrors [`block_of`]: the last block absorbs the remainder).
fn block_span(params: &SbmParams, b: usize) -> (u64, u64) {
    let size = params.n.div_ceil(params.blocks) as u64;
    let start = b as u64 * size;
    let end = if b + 1 == params.blocks { params.n as u64 } else { ((b as u64 + 1) * size).min(params.n as u64) };
    (start, end.max(start))
}

/// Streams the edges of a planted-partition graph region by region
/// without materializing pair lists. Deterministic in `seed` and — by
/// per-region derived RNGs — independent of visit order, so any subset of
/// regions can be regenerated in isolation.
///
/// # Panics
/// Same parameter validation as [`planted_partition`].
pub fn for_each_sbm_edge<F: FnMut(VertexId, VertexId)>(params: &SbmParams, seed: u64, mut f: F) {
    assert!(params.blocks >= 1 && params.blocks <= params.n, "invalid block count");
    assert!((0.0..=1.0).contains(&params.p_in), "p_in out of range");
    assert!((0.0..=1.0).contains(&params.p_out), "p_out out of range");
    let blocks = params.blocks as u64;
    for bi in 0..params.blocks {
        let (is, ie) = block_span(params, bi);
        let side = ie - is;
        // Intra region: upper triangle over the block.
        let mut rng = region_rng(seed, bi as u64 * blocks + bi as u64);
        for_each_hit(side * side.saturating_sub(1) / 2, params.p_in, &mut rng, |t| {
            let (a, b) = tri_unrank(t, side);
            f(VertexId((is + a) as u32), VertexId((is + b) as u32));
        });
        if params.p_out <= 0.0 {
            continue;
        }
        // Inter regions: full rectangles against every later block.
        for bj in (bi + 1)..params.blocks {
            let (js, je) = block_span(params, bj);
            let width = je - js;
            let mut rng = region_rng(seed, bi as u64 * blocks + bj as u64);
            for_each_hit(side * width, params.p_out, &mut rng, |t| {
                f(VertexId((is + t / width) as u32), VertexId((js + t % width) as u32));
            });
        }
    }
}

/// Generates a planted-partition graph through the bounded-memory
/// streaming builder — the 10M-vertex path. Deterministic in `seed`
/// (a different edge stream than [`planted_partition`]'s per-pair coin
/// flips, but the same model).
///
/// # Errors
/// Propagates spill-file I/O errors from the streaming builder.
pub fn planted_partition_chunked(
    params: &SbmParams,
    seed: u64,
    chunk_capacity: usize,
) -> Result<CsrGraph> {
    let mut b = StreamingGraphBuilder::with_chunk_capacity(params.n, chunk_capacity);
    let mut pending = Ok(());
    for_each_sbm_edge(params, seed, |u, v| {
        if pending.is_ok() {
            pending = b.add_edge(u, v);
        }
    });
    pending?;
    b.finish()
}

/// [`planted_partition_chunked`] straight into the compressed format.
///
/// # Errors
/// Propagates spill-file I/O errors from the streaming builder.
pub fn planted_partition_chunked_compressed(
    params: &SbmParams,
    seed: u64,
    chunk_capacity: usize,
) -> Result<CompressedCsr> {
    let mut b = StreamingGraphBuilder::with_chunk_capacity(params.n, chunk_capacity);
    let mut pending = Ok(());
    for_each_sbm_edge(params, seed, |u, v| {
        if pending.is_ok() {
            pending = b.add_edge(u, v);
        }
    });
    pending?;
    b.finish_compressed()
}

/// The fraction of edges that stay inside a community — a cheap modularity
/// proxy used by tests and the ablation bench.
pub fn intra_fraction(params: &SbmParams, graph: &CsrGraph) -> f64 {
    let mut intra = 0usize;
    let mut total = 0usize;
    for (u, v) in graph.edges() {
        total += 1;
        if block_of(params, u) == block_of(params, v) {
            intra += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    intra as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = SbmParams::modular(100, 4);
        assert_eq!(planted_partition(&p, 3), planted_partition(&p, 3));
        assert_ne!(planted_partition(&p, 3), planted_partition(&p, 4));
    }

    #[test]
    fn modular_graph_is_mostly_intra() {
        let p = SbmParams::modular(200, 4);
        let g = planted_partition(&p, 7);
        let frac = intra_fraction(&p, &g);
        assert!(frac > 0.8, "intra fraction {frac}");
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn uniform_probabilities_are_not_modular() {
        let p = SbmParams { n: 200, blocks: 4, p_in: 0.05, p_out: 0.05 };
        let g = planted_partition(&p, 7);
        let frac = intra_fraction(&p, &g);
        // 4 equal blocks: ~24.6% of pairs are intra.
        assert!(frac < 0.4, "intra fraction {frac}");
    }

    #[test]
    fn blocks_partition_the_vertices() {
        let p = SbmParams::modular(10, 3);
        let labels: Vec<usize> = (0..10).map(|v| block_of(&p, VertexId::new(v))).collect();
        assert_eq!(labels, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn zero_out_probability_disconnects_blocks() {
        let p = SbmParams { n: 60, blocks: 3, p_in: 0.5, p_out: 0.0 };
        let g = planted_partition(&p, 11);
        let comps = ktg_graph::components::Components::compute(&g);
        assert!(comps.count() >= 3, "blocks must stay disconnected, got {}", comps.count());
        assert!((intra_fraction(&p, &g) - 1.0).abs() < 1e-12);
    }


    #[test]
    fn chunked_is_deterministic_and_chunk_size_invariant() {
        let p = SbmParams::modular(300, 6);
        let a = planted_partition_chunked(&p, 5, 64).unwrap();
        let b = planted_partition_chunked(&p, 5, 7).unwrap();
        let c = planted_partition_chunked(&p, 6, 64).unwrap();
        assert_eq!(a, b, "chunk capacity must not change the graph");
        assert_ne!(a, c, "seed must");
        assert!(a.num_edges() > 0);
    }

    #[test]
    fn chunked_matches_model_statistics() {
        let p = SbmParams::modular(400, 4);
        let g = planted_partition_chunked(&p, 9, 1024).unwrap();
        let frac = intra_fraction(&p, &g);
        assert!(frac > 0.8, "intra fraction {frac}");
        // Expected intra edges: blocks * C(100,2) * p_in = 4 * 4950 * 0.2.
        let expect = 4.0 * 4950.0 * 0.2;
        let intra = g.num_edges() as f64 * frac;
        assert!((intra - expect).abs() < expect * 0.25, "intra {intra} vs {expect}");
    }

    #[test]
    fn chunked_compressed_matches_flat() {
        let p = SbmParams { n: 250, blocks: 5, p_in: 0.3, p_out: 0.01 };
        let flat = planted_partition_chunked(&p, 3, 128).unwrap();
        let comp = planted_partition_chunked_compressed(&p, 3, 128).unwrap();
        assert_eq!(comp.num_vertices(), flat.num_vertices());
        assert_eq!(comp.num_edges(), flat.num_edges());
        for v in flat.vertices() {
            assert_eq!(comp.neighbors_vec(v).as_slice(), flat.neighbors(v));
        }
    }

    #[test]
    fn tri_unrank_covers_the_triangle() {
        let s = 9u64;
        let mut seen = std::collections::BTreeSet::new();
        for t in 0..s * (s - 1) / 2 {
            let (a, b) = tri_unrank(t, s);
            assert!(a < b && b < s, "t={t} -> ({a}, {b})");
            assert!(seen.insert((a, b)), "t={t} duplicated ({a}, {b})");
        }
        assert_eq!(seen.len() as u64, s * (s - 1) / 2);
    }

    #[test]
    fn zero_out_chunked_disconnects_blocks() {
        let p = SbmParams { n: 90, blocks: 3, p_in: 0.5, p_out: 0.0 };
        let g = planted_partition_chunked(&p, 11, 32).unwrap();
        let comps = ktg_graph::components::Components::compute(&g);
        assert!(comps.count() >= 3);
        assert!((intra_fraction(&p, &g) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid block count")]
    fn zero_blocks_panics() {
        planted_partition(&SbmParams { n: 10, blocks: 0, p_in: 0.1, p_out: 0.1 }, 1);
    }
}

//! End-to-end crash recovery against the real `ktg` binary.
//!
//! These tests spawn the actual executable, kill it without ceremony
//! (`SIGKILL` — no destructors, no flushes), restart it from its
//! write-ahead log, and hold the concatenated response bytes equal to
//! an uninterrupted `ktg batch` run of the same workload. They are the
//! process-level counterpart of the in-process crash-point sweeps in
//! the differential suites: everything here crosses a real pipe, a
//! real socket, and a real `kill(2)`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn ktg() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ktg"))
}

/// Scratch directory holding a tiny hand-written dataset — the paper's
/// Figure 1 network (`ktg_core::fixtures::figure1`) in the text formats
/// `ktg` loads. Writing the files directly instead of running
/// `ktg generate` keeps the *debug-mode* binary's end-to-end runtime in
/// seconds: every query below solves instantly on 12 vertices, and this
/// suite runs under plain `cargo test`.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ktg-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("data")).expect("scratch dir");
    let edges = "# ktg edge list: 12 vertices, 16 edges\n\
        0\t1\n0\t2\n0\t3\n0\t4\n0\t9\n0\t11\n\
        2\t3\n3\t4\n3\t9\n\
        4\t6\n4\t7\n4\t8\n6\t7\n6\t8\n\
        5\t7\n2\t10\n";
    let keywords = "# ktg keyword profiles: 12 vertices\n\
        0\tSN,GD,DQ\n1\tSN,DQ\n2\tSN,GD\n3\tDQ,GD\n4\tGD\n5\tGD\n\
        6\tML\n7\tSN,QP\n8\tIR\n9\tML,IR\n10\tQP,GD\n11\tSN,GD\n";
    std::fs::write(dir.join("data/edges.txt"), edges).expect("edges");
    std::fs::write(dir.join("data/keywords.txt"), keywords).expect("keywords");
    dir
}

/// Spawns `ktg serve` over the generated data with a WAL attached and
/// returns the child plus its reported address. Extra env vars (e.g.
/// `KTG_CRASH_AFTER`) ride along.
fn spawn_server(dir: &Path, envs: &[(&str, &str)]) -> (Child, String, Vec<String>) {
    let mut cmd = ktg();
    cmd.arg("serve")
        .arg("--edges")
        .arg(dir.join("data/edges.txt"))
        .arg("--keywords")
        .arg(dir.join("data/keywords.txt"))
        .arg("--wal")
        .arg(dir.join("updates.wal"))
        .args(["--bind", "127.0.0.1:0", "--workers", "2", "--threads", "1", "--no-cache"])
        .env("KTG_VERIFY", "1")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut preamble = Vec::new();
    let mut addr = String::new();
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("read server stdout");
        if let Some(rest) = line.strip_prefix("serving on ") {
            addr = rest.split(' ').next().expect("address token").to_string();
            break;
        }
        preamble.push(line);
    }
    assert!(!addr.is_empty(), "server never reported its address: {preamble:?}");
    (child, addr, preamble)
}

/// Sends one line and reads its `.`-terminated response block,
/// returning the block's lines (newline-joined, empty for none).
fn request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &str,
) -> std::io::Result<String> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut block = String::new();
    loop {
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-response",
            ));
        }
        if response == ".\n" {
            return Ok(block);
        }
        block.push_str(&response);
    }
}

/// Replays `lines` over one connection, concatenating response text.
fn replay(addr: &str, lines: &[&str]) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut out = String::new();
    for line in lines {
        out.push_str(&request(&mut reader, &mut writer, line).expect("request"));
    }
    out
}

/// Polls `/health` until the server reports `serving` (recovery done).
fn await_serving(addr: &str) {
    for _ in 0..500 {
        let stream = TcpStream::connect(addr).expect("connect for health");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let block = request(&mut reader, &mut writer, "/health").expect("health");
        if block.contains("\"state\":\"serving\"") {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("server never finished recovering");
}

/// Response linenos are per-connection; an interrupted run restarts
/// them on the post-crash connection. Renumbering with one global
/// counter makes the concatenated crashed-run bytes comparable to the
/// uninterrupted batch bytes (everything else must match verbatim).
fn renumber(text: &str) -> String {
    let mut n = 0usize;
    let mut out = String::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix('[') {
            if let Some((num, tail)) = rest.split_once("] ") {
                if num.chars().all(|c| c.is_ascii_digit()) {
                    n += 1;
                    out.push_str(&format!("[{n}] {tail}\n"));
                    continue;
                }
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// SIGKILL the server mid-workload; a restarted process must recover
/// the first half's updates from the WAL and serve the second half so
/// that the concatenated responses are (modulo per-connection
/// numbering) the uninterrupted `ktg batch` bytes for the whole
/// workload.
#[test]
fn sigkill_mid_workload_recovers_byte_identically() {
    // Edges (1,2) and (10,11) are absent from Figure 1, so both inserts
    // genuinely mutate state — and `remove 1 2` in the second half
    // renders `applied` only if the pre-crash insert survived, which is
    // what makes the byte equality a durability proof rather than a
    // tautology.
    let dir = scratch("kill9");
    let first_half = [
        "ktg terms=SN,DQ,GD p=3 k=1 n=2",
        "insert 1 2",
        "dktg terms=SN,QP,GD p=3 k=1 n=2 gamma=0.5",
        "insert 10 11",
    ];
    let second_half =
        ["ktg terms=QP,GD p=3 k=1 n=2", "remove 1 2", "ktg terms=SN,GD p=3 k=1 n=2"];
    let full: Vec<&str> = first_half.iter().chain(&second_half).copied().collect();

    // The uninterrupted reference: one `ktg batch` over the whole
    // workload, header/summary lines stripped.
    std::fs::write(dir.join("workload.txt"), full.join("\n") + "\n").expect("workload");
    let batch = ktg()
        .arg("batch")
        .arg("--edges")
        .arg(dir.join("data/edges.txt"))
        .arg("--keywords")
        .arg(dir.join("data/keywords.txt"))
        .arg("--workload")
        .arg(dir.join("workload.txt"))
        .args(["--threads", "1", "--no-cache"])
        .env("KTG_VERIFY", "1")
        .output()
        .expect("run batch");
    assert!(batch.status.success(), "batch failed");
    let reference: String = String::from_utf8(batch.stdout)
        .expect("batch output")
        .lines()
        .filter(|l| {
            !l.starts_with("batch: ") && !l.starts_with("served: ") && !l.starts_with("partial: ")
        })
        .map(|l| format!("{l}\n"))
        .collect();

    let (mut child, addr, _) = spawn_server(&dir, &[]);
    let first_bytes = replay(&addr, &first_half);
    // No farewell, no flush, no Drop: the process is simply gone.
    child.kill().expect("SIGKILL server");
    let _ = child.wait();

    let (mut child, addr, preamble) = spawn_server(&dir, &[]);
    assert!(
        preamble.iter().any(|l| l.starts_with("wal: recovered 2 updates")),
        "restart did not report WAL recovery: {preamble:?}"
    );
    await_serving(&addr);
    let second_bytes = replay(&addr, &second_half);
    let got = renumber(&(first_bytes + &second_bytes));
    assert_eq!(renumber(&reference), got, "crashed+recovered bytes diverged from batch");

    // `remove 1 2` rendering `applied` (asserted via the byte equality
    // above) is the durability proof: the pre-crash insert survived.
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let _ = request(&mut reader, &mut writer, "/shutdown");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The seeded crash harness: `KTG_CRASH_AFTER=n` aborts the process
/// after the n-th WAL append — *after* the record is durable, *before*
/// the update is applied or acknowledged. Restart must replay all n
/// records: the logged-but-never-applied tail update is recovered, not
/// lost, exactly the log-before-apply contract.
#[test]
fn crash_after_harness_recovers_the_unapplied_tail() {
    // All three edges are absent from Figure 1, so every insert renders
    // `applied` live and `no-op` on the recovered probe.
    let dir = scratch("crash-after");
    let (mut child, addr, _) = spawn_server(&dir, &[("KTG_CRASH_AFTER", "3")]);

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    assert_eq!(
        request(&mut reader, &mut writer, "insert 1 2").expect("update 1"),
        "[1] update: applied\n"
    );
    assert_eq!(
        request(&mut reader, &mut writer, "insert 5 6").expect("update 2"),
        "[2] update: applied\n"
    );
    // The third append trips the harness: the record hits the disk,
    // then the process aborts without responding.
    let third = request(&mut reader, &mut writer, "insert 10 11");
    assert!(third.is_err(), "crash harness did not kill the server: {third:?}");
    let status = child.wait().expect("reap server");
    assert!(!status.success(), "KTG_CRASH_AFTER abort must be a nonzero exit");

    let (mut child, addr, preamble) = spawn_server(&dir, &[]);
    assert!(
        preamble.iter().any(|l| l.starts_with("wal: recovered 3 updates")),
        "all three durable records must replay: {preamble:?}"
    );
    await_serving(&addr);
    // Every update — the unacknowledged third included — is present.
    let probe = replay(&addr, &["insert 1 2", "insert 5 6", "insert 10 11"]);
    assert_eq!(
        probe,
        "[1] update: no-op\n[2] update: no-op\n[3] update: no-op\n",
        "recovered state is missing a durable update"
    );
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let _ = request(&mut reader, &mut writer, "/shutdown");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

//! Command implementations.
//!
//! Each command takes the parsed flags and a writer; file-system paths
//! come exclusively from flags so tests can point everything at temp
//! directories.

use crate::args::{Command, ParsedArgs};
use crate::RunStatus;
use ktg_common::{CompletionStatus, KtgError, Result, VertexId};
use ktg_core::dktg::{self, DktgQuery};
use ktg_core::serve::{self, CachePolicy, ItemOutcome, OracleKind, ServeOptions, ServeSession};
use ktg_core::{
    bb, candidates, explain, multi_query, verify, AttributedGraph, KtgQuery, MemberOrdering,
};
use ktg_datasets::{DatasetProfile, QueryGen};
use ktg_graph::{io as graph_io, stats, GraphFormat, GraphStore};
use ktg_index::{persist, BfsOracle, DistanceOracle, NlIndex, NlrnlIndex, PllIndex};
use ktg_keywords::io as keyword_io;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Dispatches a parsed command line, reporting whether every answer was
/// exact ([`RunStatus::Complete`]), some were degraded or failed
/// ([`RunStatus::Degraded`] — the binary exits 3), or some were shed by
/// admission control ([`RunStatus::Overloaded`] — exit 4, taking
/// precedence over degradation).
pub fn dispatch(args: &ParsedArgs, out: &mut dyn Write) -> Result<RunStatus> {
    match args.command {
        Command::Generate => generate(args, out).map(|()| RunStatus::Complete),
        Command::Stats => stats_cmd(args, out).map(|()| RunStatus::Complete),
        Command::Index => index_cmd(args, out).map(|()| RunStatus::Complete),
        Command::Query => query_cmd(args, out, false),
        Command::Dktg => query_cmd(args, out, true),
        Command::Batch => batch_cmd(args, out),
        Command::Serve => crate::serve::serve_cmd(args, out),
    }
}

/// `--deadline-ms N`: per-query wall-clock budget (absent = unbudgeted).
fn deadline_flag(args: &ParsedArgs) -> Result<Option<u64>> {
    match args.optional("deadline-ms") {
        None => Ok(None),
        Some(_) => args.required_num::<u64>("deadline-ms").map(Some),
    }
}

/// `--node-budget N`: deterministic search-node budget (absent = none).
/// Unlike a deadline this degrades reproducibly, which is what the CI
/// smoke tests and scripted benchmarks want.
fn node_budget_flag(args: &ParsedArgs) -> Result<Option<u64>> {
    match args.optional("node-budget") {
        None => Ok(None),
        Some(_) => args.required_num::<u64>("node-budget").map(Some),
    }
}

/// `--cache-policy fifo|cost`: result-cache eviction/admission policy
/// (answers are byte-identical either way; only hit rates differ).
fn cache_policy_flag(args: &ParsedArgs) -> Result<CachePolicy> {
    match args.optional("cache-policy").unwrap_or("cost") {
        "fifo" => Ok(CachePolicy::Fifo),
        "cost" => Ok(CachePolicy::Cost),
        other => Err(KtgError::input(format!(
            "unknown cache policy '{other}' (fifo|cost)"
        ))),
    }
}

/// `--oracle nlrnl|pll` for the serving commands (the per-query `query`
/// command additionally accepts bfs|nl, which have no dynamic
/// maintenance story and therefore no place in a session).
fn serve_oracle_flag(args: &ParsedArgs) -> Result<OracleKind> {
    match args.optional("oracle").unwrap_or("nlrnl") {
        "nlrnl" => Ok(OracleKind::Nlrnl),
        "pll" => Ok(OracleKind::Pll),
        other => Err(KtgError::input(format!(
            "unknown serving oracle '{other}' (nlrnl|pll)"
        ))),
    }
}

fn ordering_flag(args: &ParsedArgs) -> Result<MemberOrdering> {
    match args.optional("algo").unwrap_or("vkc-deg") {
        "qkc" => Ok(MemberOrdering::Qkc),
        "vkc" => Ok(MemberOrdering::Vkc),
        "vkc-deg" => Ok(MemberOrdering::VkcDeg),
        other => Err(KtgError::input(format!(
            "unknown algorithm '{other}' (qkc|vkc|vkc-deg)"
        ))),
    }
}

fn profile_by_name(name: &str) -> Result<DatasetProfile> {
    match name {
        "dblp" => Ok(DatasetProfile::Dblp),
        "gowalla" => Ok(DatasetProfile::Gowalla),
        "brightkite" => Ok(DatasetProfile::Brightkite),
        "flickr" => Ok(DatasetProfile::Flickr),
        "twitter" => Ok(DatasetProfile::Twitter),
        "dblp-1m" => Ok(DatasetProfile::DblpLarge),
        other => Err(KtgError::input(format!(
            "unknown profile '{other}' (dblp|gowalla|brightkite|flickr|twitter|dblp-1m)"
        ))),
    }
}

/// `ktg generate --profile NAME --out DIR [--scale N] [--seed N]`, or the
/// streaming form `ktg generate --sbm-n N --sbm-blocks B --out DIR
/// [--sbm-pin P] [--sbm-pout P] [--chunk-capacity N] [--seed N]` which
/// builds a planted-partition graph through the bounded-memory chunked
/// pipeline (region-seeded edge sampling + external-sort CSR assembly) —
/// the generator the 10M-vertex scale story uses.
fn generate(args: &ParsedArgs, out: &mut dyn Write) -> Result<()> {
    if args.optional("sbm-n").is_some() {
        return generate_sbm(args, out);
    }
    let profile = profile_by_name(args.required("profile")?)?;
    let out_dir = args.required("out")?;
    let scale: usize = args.num_or("scale", 100)?;
    let seed: u64 = args.num_or("seed", 42)?;

    let net = profile.instantiate(scale, seed);
    std::fs::create_dir_all(out_dir)?;
    let edges_path = Path::new(out_dir).join("edges.txt");
    let keywords_path = Path::new(out_dir).join("keywords.txt");
    graph_io::write_edge_list(net.graph(), File::create(&edges_path)?)?;
    keyword_io::write_keywords(net.vocab(), net.keywords(), File::create(&keywords_path)?)?;

    writeln!(out, "generated {profile} at scale 1/{scale} (seed {seed})")?;
    writeln!(out, "  graph:    {}", stats::summary(net.graph()))?;
    writeln!(out, "  edges:    {}", edges_path.display())?;
    writeln!(out, "  keywords: {} ({} terms)", keywords_path.display(), net.vocab().len())?;
    Ok(())
}

/// `--graph-format flat|compressed`: which in-memory topology layout to
/// use (absent = keep the source's format; text inputs default to flat).
fn graph_format_flag(args: &ParsedArgs) -> Result<Option<GraphFormat>> {
    args.optional("graph-format").map(GraphFormat::parse).transpose()
}


/// The `--sbm-*` arm of [`generate`].
fn generate_sbm(args: &ParsedArgs, out: &mut dyn Write) -> Result<()> {
    let params = ktg_datasets::sbm::SbmParams {
        n: args.required_num("sbm-n")?,
        blocks: args.num_or("sbm-blocks", 100)?,
        p_in: args.num_or("sbm-pin", 0.1)?,
        p_out: args.num_or("sbm-pout", 0.0)?,
    };
    if params.blocks < 1 || params.blocks > params.n {
        return Err(KtgError::input("--sbm-blocks must be in 1..=--sbm-n"));
    }
    if !(0.0..=1.0).contains(&params.p_in) || !(0.0..=1.0).contains(&params.p_out) {
        return Err(KtgError::input("--sbm-pin/--sbm-pout must be in [0, 1]"));
    }
    let out_dir = args.required("out")?;
    let seed: u64 = args.num_or("seed", 42)?;
    let chunk: usize = args.num_or("chunk-capacity", 1 << 20)?;

    let graph = ktg_datasets::sbm::planted_partition_chunked(&params, seed, chunk)?;
    let model = ktg_datasets::keywords::KeywordModel::default();
    let (vocab, vk) = ktg_datasets::keywords::assign_zipf_chunked(params.n, &model, seed);
    std::fs::create_dir_all(out_dir)?;
    let edges_path = Path::new(out_dir).join("edges.txt");
    let keywords_path = Path::new(out_dir).join("keywords.txt");
    graph_io::write_edge_list(&graph, File::create(&edges_path)?)?;
    keyword_io::write_keywords(&vocab, &vk, File::create(&keywords_path)?)?;

    writeln!(
        out,
        "generated sbm: {} vertices, {} blocks, p_in {}, p_out {} (seed {seed}, chunked)",
        params.n, params.blocks, params.p_in, params.p_out
    )?;
    writeln!(out, "  graph:    {}", stats::summary(&graph))?;
    writeln!(out, "  edges:    {}", edges_path.display())?;
    writeln!(out, "  keywords: {} ({} terms)", keywords_path.display(), vocab.len())?;
    Ok(())
}

/// Loads an attributed network from `--edges` (+ optional `--keywords`).
pub(crate) fn load_network(args: &ParsedArgs) -> Result<AttributedGraph> {
    load_network_ex(args).map(|(net, _)| net)
}

/// Loads an attributed network plus any pre-built NLRNL index that rode
/// along: from `--bundle FILE` (one binary file, O(I/O) reload) when
/// given, otherwise from `--edges` (+ optional `--keywords`) text files.
/// `--graph-format` converts the topology on either path.
pub(crate) fn load_network_ex(args: &ParsedArgs) -> Result<(AttributedGraph, Option<NlrnlIndex>)> {
    let want = graph_format_flag(args)?;
    if let Some(path) = args.optional("bundle") {
        let bundle = persist::load_bundle(File::open(path)?)?;
        let mut graph = bundle.graph;
        if let Some(fmt) = want {
            if fmt != graph.format() {
                // Format conversion preserves topology, so the bundled
                // index (fingerprinted on the degree sequence) stays valid.
                graph = GraphStore::from_csr(graph.to_csr(), fmt);
            }
        }
        let net = AttributedGraph::with_store(graph, bundle.vocab, bundle.keywords);
        return Ok((net, bundle.index));
    }
    load_network_from_files(args).map(|net| (net, None))
}

/// The text-file arm of [`load_network_ex`]: always reads
/// `--edges`/`--keywords`, never `--bundle` (which `ktg index` uses as an
/// *output* path).
fn load_network_from_files(args: &ParsedArgs) -> Result<AttributedGraph> {
    let want = graph_format_flag(args)?;
    let edges = args.required("edges")?;
    let loaded = graph_io::read_edge_list(File::open(edges)?)?;
    let n = loaded.graph.num_vertices();
    let (vocab, vk) = match args.optional("keywords") {
        Some(path) => keyword_io::read_keywords(n, File::open(path)?)?,
        None => {
            // No profiles supplied: synthesize deterministic ones so the
            // query commands still work for quick experiments.
            let model = ktg_datasets::keywords::KeywordModel::default();
            ktg_datasets::keywords::assign_zipf(n, &model, 42)
        }
    };
    let store = GraphStore::from_csr(loaded.graph, want.unwrap_or(GraphFormat::Flat));
    Ok(AttributedGraph::with_store(store, vocab, vk))
}

/// `ktg stats --edges FILE [--keywords FILE]`
fn stats_cmd(args: &ParsedArgs, out: &mut dyn Write) -> Result<()> {
    let net = load_network(args)?;
    writeln!(out, "graph: {}", stats::summary(net.graph()))?;
    let comps = ktg_graph::components::Components::compute(net.graph());
    writeln!(out, "components: {} (largest {})", comps.count(), comps.largest())?;
    let hops = stats::sample_hop_stats(net.graph(), 16.min(net.num_vertices()));
    writeln!(out, "hops (sampled): max {} mean {:.2}", hops.max_hops, hops.mean_hops)?;
    writeln!(out, "vocabulary: {} terms", net.vocab().len())?;
    let pairs = net.keywords().num_pairs();
    writeln!(
        out,
        "keyword pairs: {} ({:.2} per vertex)",
        pairs,
        pairs as f64 / net.num_vertices().max(1) as f64
    )?;
    Ok(())
}

/// `ktg index --edges FILE (--out FILE | --bundle FILE) [--oracle nlrnl|pll]
/// [--keywords FILE] [--graph-format flat|compressed] [--threads N]`
///
/// `--out` writes the bare index; `--bundle` writes the whole network
/// (graph in the selected format, vocabulary, keyword arena, NLRNL index)
/// as one binary file that `query`/`batch`/`serve --bundle` reload
/// without re-parsing text or rebuilding the index.
fn index_cmd(args: &ParsedArgs, out: &mut dyn Write) -> Result<()> {
    let out_path = args.optional("out");
    let bundle_path = args.optional("bundle");
    if out_path.is_none() && bundle_path.is_none() {
        return Err(KtgError::input("provide --out FILE and/or --bundle FILE"));
    }
    let net = load_network_from_files(args)?;
    let graph = net.graph();
    match args.optional("oracle").unwrap_or("nlrnl") {
        "nlrnl" => {
            let threads: usize = args.num_or("threads", 0)?;
            let index = if threads == 0 {
                NlrnlIndex::build(graph)
            } else {
                NlrnlIndex::build_with_threads(graph, threads)
            };
            if let Some(path) = out_path {
                persist::save_nlrnl(&index, graph, File::create(path)?)?;
            }
            if let Some(path) = bundle_path {
                persist::save_bundle(
                    graph,
                    net.vocab(),
                    net.keywords(),
                    Some(&index),
                    File::create(path)?,
                )?;
                writeln!(out, "bundled {} graph + keywords + index into {path}", graph.format())?;
            }
            let space = index.space();
            writeln!(
                out,
                "built NLRNL over {} vertices in {:?}: {} bytes ({} forward, {} reverse), saved to {}",
                graph.num_vertices(),
                index.build_stats().elapsed,
                space.total_bytes(),
                space.forward_bytes,
                space.reverse_bytes,
                out_path.or(bundle_path).unwrap_or("-")
            )?;
        }
        "pll" => {
            if bundle_path.is_some() {
                return Err(KtgError::input(
                    "bundles embed NLRNL indexes only; use --oracle nlrnl with --bundle",
                ));
            }
            let index = PllIndex::build_parallel(graph);
            let path = out_path.unwrap_or_default();
            persist::save_pll(&index, graph, File::create(path)?)?;
            writeln!(
                out,
                "built PLL over {} vertices in {:?}: {} label entries ({} bytes), saved to {}",
                graph.num_vertices(),
                index.build_stats().elapsed,
                index.label_entries(),
                index.space().total_bytes(),
                path
            )?;
        }
        other => {
            return Err(KtgError::input(format!(
                "unknown index oracle '{other}' (nlrnl|pll)"
            )))
        }
    }
    Ok(())
}

/// `ktg batch --workload FILE --edges FILE [--keywords FILE] [--threads N]
/// [--cache-entries N] [--no-cache] [--algo NAME] [--bitmap-threshold N]
/// [--deadline-ms N] [--node-budget N] [--max-inflight N]`
///
/// Replays a workload file (see `ktg_core::serve::workload` for the
/// format) through a [`ServeSession`]: queries fan out across worker
/// threads, repeated queries hit the epoch-guarded result cache, and
/// `insert`/`remove` lines mutate the graph between query runs. Answers
/// are byte-identical to running each query individually.
fn batch_cmd(args: &ParsedArgs, out: &mut dyn Write) -> Result<RunStatus> {
    let (net, preloaded) = load_network_ex(args)?;
    let text = std::fs::read_to_string(args.required("workload")?)?;
    let items = serve::parse_workload(&text, &net)?;

    let options = serve_options_from_flags(args)?;
    let max_inflight = options.max_inflight;
    writeln!(
        out,
        "batch: {} items, {} threads, cache {}",
        items.len(),
        if options.threads == 0 { "auto".to_string() } else { options.threads.to_string() },
        if options.use_cache {
            format!("on ({} entries)", options.cache_entries)
        } else {
            "off".to_string()
        }
    )?;

    let mut session = ServeSession::with_index(net, options, preloaded);
    let outcomes = session.run(&items);
    let (mut degraded, mut failed, mut shed) = (0usize, 0usize, 0usize);
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            ItemOutcome::Ktg(ans) => degraded += usize::from(!ans.status.is_exact()),
            ItemOutcome::Dktg(ans) => degraded += usize::from(!ans.status.is_exact()),
            ItemOutcome::Failed { .. } => failed += 1,
            ItemOutcome::Overloaded => shed += 1,
            ItemOutcome::Update { .. } => {}
        }
        write_outcome(out, i + 1, outcome, max_inflight)?;
    }
    let stats = session.stats();
    writeln!(
        out,
        "served: {} answers from cache, {} fresh; {} conflict-row hits; {} stale reclaimed; {} subset-seeded; {} compactions; epoch {}",
        stats.result_hits,
        stats.result_misses,
        stats.row_hits,
        stats.result_reclaimed,
        stats.subset_hits,
        stats.compactions,
        stats.epoch
    )?;
    if degraded + failed + shed > 0 {
        writeln!(out, "partial: {degraded} degraded, {failed} failed, {shed} overloaded")?;
        // Shedding wins over degradation: exit 4 says "retry against an
        // idle server", exit 3 says "the answers themselves are partial"
        // — conflating them (the old behavior folded shed runs into the
        // degraded exit) made load problems look like quality problems.
        return Ok(if shed > 0 { RunStatus::Overloaded } else { RunStatus::Degraded });
    }
    Ok(RunStatus::Complete)
}

/// Writes the canonical rendering of one workload outcome — the shared
/// answer text of `ktg batch` and of every `ktg serve` TCP response
/// (the differential suite holds the two byte-identical).
pub fn write_outcome(
    out: &mut dyn Write,
    lineno: usize,
    outcome: &ItemOutcome,
    max_inflight: usize,
) -> Result<()> {
    let status_marker = |status: &CompletionStatus| {
        if status.is_exact() { String::new() } else { format!(" [{status}]") }
    };
    let write_groups = |out: &mut dyn Write, groups: &[ktg_core::Group]| -> Result<()> {
        for (rank, g) in groups.iter().enumerate() {
            writeln!(
                out,
                "    #{}: {:?} — QKC {}",
                rank + 1,
                g.members().iter().map(|v| v.0).collect::<Vec<_>>(),
                g.coverage_count()
            )?;
        }
        Ok(())
    };
    match outcome {
        ItemOutcome::Ktg(ans) => {
            writeln!(
                out,
                "[{lineno}] ktg: {} groups{}{}",
                ans.groups.len(),
                if ans.cached { " [cached]" } else { "" },
                status_marker(&ans.status)
            )?;
            write_groups(out, &ans.groups)?;
        }
        ItemOutcome::Dktg(ans) => {
            writeln!(
                out,
                "[{lineno}] dktg: {} groups, score {:.3} (min QKC {:.3}, dL {:.3}){}{}",
                ans.groups.len(),
                ans.score,
                ans.min_qkc,
                ans.diversity,
                if ans.cached { " [cached]" } else { "" },
                status_marker(&ans.status)
            )?;
            write_groups(out, &ans.groups)?;
        }
        ItemOutcome::Update { applied } => {
            writeln!(out, "[{lineno}] update: {}", if *applied { "applied" } else { "no-op" })?;
        }
        ItemOutcome::Failed { reason } => {
            writeln!(out, "[{lineno}] failed: {reason}")?;
        }
        ItemOutcome::Overloaded => {
            writeln!(
                out,
                "[{lineno}] {}",
                KtgError::overloaded(format!("shed by --max-inflight {max_inflight}"))
            )?;
        }
    }
    Ok(())
}

/// Builds [`ServeOptions`] from the engine/cache flags shared by
/// `ktg batch` and the `ktg serve` server mode: `--threads`,
/// `--no-cache`, `--cache-entries`, `--cache-policy`,
/// `--no-subset-reuse`, `--oracle`, `--algo`, `--bitmap-threshold`,
/// `--deadline-ms`, `--node-budget`, `--max-inflight`.
pub(crate) fn serve_options_from_flags(args: &ParsedArgs) -> Result<ServeOptions> {
    let mut engine = bb::BbOptions::vkc()
        .with_ordering(ordering_flag(args)?)
        .with_bitmap_threshold(args.num_or("bitmap-threshold", bb::DEFAULT_BITMAP_THRESHOLD)?)
        .with_deadline_ms(deadline_flag(args)?);
    engine.node_budget = node_budget_flag(args)?;
    Ok(ServeOptions {
        threads: args.num_or("threads", 0)?,
        use_cache: args.optional("no-cache").is_none(),
        cache_entries: args.num_or("cache-entries", 4096)?,
        cache_policy: cache_policy_flag(args)?,
        subset_reuse: args.optional("no-subset-reuse").is_none(),
        oracle: serve_oracle_flag(args)?,
        engine,
        max_inflight: args.num_or("max-inflight", 0)?,
    })
}

/// Shared by `query` and `dktg`.
fn query_cmd(args: &ParsedArgs, out: &mut dyn Write, diversified: bool) -> Result<RunStatus> {
    let (net, preloaded) = load_network_ex(args)?;
    let p: usize = args.num_or("p", 3)?;
    let k: u32 = args.num_or("k", 2)?;
    let n: usize = args.num_or("n", 5)?;

    // Query keywords: explicit --terms, or --random-terms SIZE.
    let keywords = if args.optional("terms").is_some() {
        let terms = args.list("terms")?;
        net.query_keywords(terms.iter().map(String::as_str))?
    } else {
        let size: usize = args.num_or("random-terms", 0)?;
        if size == 0 {
            return Err(KtgError::query(
                "provide --terms a,b,c or --random-terms SIZE".to_string(),
            ));
        }
        let seed: u64 = args.num_or("seed", 42)?;
        QueryGen::new(&net, seed).query(size)?
    };
    let query = KtgQuery::new(keywords.clone(), p, k, n)?;

    // Oracle selection; `--index FILE` loads a persisted index of the
    // matching kind (see `ktg index --oracle`).
    let oracle: Box<dyn DistanceOracle> = match args.optional("oracle").unwrap_or("nlrnl") {
        "bfs" => Box::new(BfsOracle::new(net.graph())),
        "nl" => Box::new(NlIndex::build(net.graph())),
        "nlrnl" => match (args.optional("index"), preloaded) {
            (Some(path), _) => Box::new(persist::load_nlrnl(net.graph(), File::open(path)?)?),
            (None, Some(index)) => Box::new(index),
            (None, None) => Box::new(NlrnlIndex::build(net.graph())),
        },
        "pll" => match args.optional("index") {
            Some(path) => Box::new(persist::load_pll(net.graph(), File::open(path)?)?),
            None => Box::new(PllIndex::build_parallel(net.graph())),
        },
        other => {
            return Err(KtgError::input(format!(
                "unknown oracle '{other}' (bfs|nl|nlrnl|pll)"
            )))
        }
    };
    let oracle = oracle.as_ref();

    let ordering = ordering_flag(args)?;
    // `--parallel true` fans the search out over all cores (KTG_THREADS
    // honored); `--threads N` pins an exact worker count and wins when
    // both are given. Either way the results are byte-identical to the
    // sequential engine — only the wall clock changes.
    let parallel = args.optional("parallel").is_some_and(|v| v == "true" || v == "1");
    let threads: usize = args.num_or("threads", if parallel { 0 } else { 1 })?;
    let bitmap_threshold: usize =
        args.num_or("bitmap-threshold", bb::DEFAULT_BITMAP_THRESHOLD)?;
    let mut opts = bb::BbOptions::vkc()
        .with_ordering(ordering)
        .with_threads(threads)
        .with_bitmap_threshold(bitmap_threshold)
        .with_deadline_ms(deadline_flag(args)?);
    opts.node_budget = node_budget_flag(args)?;

    let masks = net.compile(query.keywords());
    let mut cands = candidates::collect_vec(net.graph(), &masks);
    if let Some(authors) = args.optional("authors") {
        let authors: Vec<VertexId> = authors
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse::<u32>()
                    .map(VertexId)
                    .map_err(|_| KtgError::input(format!("bad author id '{s}'")))
            })
            .collect::<Result<_>>()?;
        let removed = multi_query::restrict_candidates(&oracle, &authors, k, &mut cands);
        writeln!(out, "excluded {removed} candidates within {k} hops of the authors")?;
    }

    let term_list: Vec<&str> = keywords.ids().iter().map(|&kw| net.vocab().term(kw)).collect();
    writeln!(
        out,
        "{} query ⟨W_Q={{{}}}, p={p}, k={k}, N={n}⟩ over {} candidates",
        if diversified { "DKTG" } else { "KTG" },
        term_list.join(", "),
        cands.len()
    )?;

    let status = if diversified {
        let gamma: f64 = args.num_or("gamma", 0.5)?;
        let dq = DktgQuery::new(query.clone(), gamma)?;
        let result = dktg::solve_with_candidates(&dq, &oracle, &mut cands, &opts);
        if verify::checked_mode_enabled() {
            let report = verify::audit_dktg_results(&net, &dq, &result.groups);
            assert!(report.is_ok(), "checked-mode verification failed: {report}");
            writeln!(out, "checked mode: {report}")?;
        }
        writeln!(
            out,
            "score = {:.3} (min QKC {:.3}, dL {:.3}) — {} groups",
            result.score,
            result.min_qkc,
            result.diversity,
            result.groups.len()
        )?;
        for (rank, g) in result.groups.iter().enumerate() {
            write_group(out, &net, &keywords, &masks, rank, g, args)?;
        }
        result.status
    } else {
        // `solve_prepared` keeps the graph in reach so the conflict-bitmap
        // kernel can replace per-pair oracle probes for small pools.
        let result = bb::solve_prepared(&net, &query, &oracle, cands, &opts);
        if verify::checked_mode_enabled() {
            let report = verify::audit_results(&net, &query, &result.groups);
            assert!(report.is_ok(), "checked-mode verification failed: {report}");
            writeln!(out, "checked mode: {report}")?;
        }
        writeln!(out, "{} groups (explored {} nodes)", result.groups.len(), result.stats.nodes)?;
        for (rank, g) in result.groups.iter().enumerate() {
            write_group(out, &net, &keywords, &masks, rank, g, args)?;
        }
        result.status
    };
    // Machine-greppable completion status: `exact` or `degraded(<why>)` —
    // the groups above are valid either way, a degraded run just may not
    // have proven optimality before its budget fired.
    writeln!(out, "status: {status}")?;
    Ok(if status.is_exact() { RunStatus::Complete } else { RunStatus::Degraded })
}

fn write_group(
    out: &mut dyn Write,
    net: &AttributedGraph,
    keywords: &ktg_keywords::QueryKeywords,
    masks: &ktg_keywords::QueryMasks,
    rank: usize,
    group: &ktg_core::Group,
    args: &ParsedArgs,
) -> Result<()> {
    writeln!(
        out,
        "#{}: {:?} — QKC {}/{}",
        rank + 1,
        group.members().iter().map(|v| v.0).collect::<Vec<_>>(),
        group.coverage_count(),
        keywords.len()
    )?;
    if args.optional("explain").is_some_and(|v| v == "true" || v == "1") {
        let ex = explain::explain(net, keywords, masks, group);
        for line in ex.to_string().lines() {
            writeln!(out, "    {line}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_with_status(parts: &[&str]) -> Result<(RunStatus, String)> {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        let parsed = parse(&argv)?;
        let mut buf = Vec::new();
        let status = dispatch(&parsed, &mut buf)?;
        Ok((status, String::from_utf8(buf).expect("utf8 output")))
    }

    fn run_to_string(parts: &[&str]) -> Result<String> {
        run_with_status(parts).map(|(_, text)| text)
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ktg-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn generate_stats_index_query_roundtrip() {
        let dir = temp_dir("roundtrip");
        let out = dir.to_str().unwrap();

        let gen = run_to_string(&[
            "generate", "--profile", "brightkite", "--scale", "400", "--seed", "7", "--out", out,
        ])
        .unwrap();
        assert!(gen.contains("generated brightkite"));
        let edges = dir.join("edges.txt");
        let keywords = dir.join("keywords.txt");
        assert!(edges.exists() && keywords.exists());

        let stats = run_to_string(&[
            "stats", "--edges", edges.to_str().unwrap(), "--keywords", keywords.to_str().unwrap(),
        ])
        .unwrap();
        assert!(stats.contains("graph: |V|="));
        assert!(stats.contains("vocabulary:"));

        let idx_path = dir.join("nlrnl.idx");
        let idx = run_to_string(&[
            "index", "--edges", edges.to_str().unwrap(), "--out", idx_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(idx.contains("built NLRNL"));
        assert!(idx_path.exists());

        let q = run_to_string(&[
            "query",
            "--edges", edges.to_str().unwrap(),
            "--keywords", keywords.to_str().unwrap(),
            "--index", idx_path.to_str().unwrap(),
            "--random-terms", "5",
            "-p", "3", "-k", "1", "-n", "3",
            "--explain", "true",
        ])
        .unwrap();
        assert!(q.contains("KTG query"));
        assert!(q.contains("#1:"), "query found no groups:\n{q}");

        let d = run_to_string(&[
            "dktg",
            "--edges", edges.to_str().unwrap(),
            "--keywords", keywords.to_str().unwrap(),
            "--random-terms", "5",
            "-p", "3", "-k", "1", "-n", "2",
            "--gamma", "0.5",
        ])
        .unwrap();
        assert!(d.contains("DKTG query"));
        assert!(d.contains("score ="));

        std::fs::remove_dir_all(&dir).ok();
    }


    #[test]
    fn graph_format_and_bundle_are_differential() {
        let dir = temp_dir("bundle");
        let out = dir.to_str().unwrap();
        // Chunked SBM generation: block-diagonal (p_out 0) keeps every
        // BFS inside a small component, so indexing stays fast.
        let gen = run_to_string(&[
            "generate", "--sbm-n", "600", "--sbm-blocks", "30",
            "--sbm-pin", "0.2", "--sbm-pout", "0.0",
            "--seed", "7", "--out", out,
        ])
        .unwrap();
        assert!(gen.contains("generated sbm: 600 vertices"), "{gen}");
        let edges = dir.join("edges.txt");
        let keywords = dir.join("keywords.txt");

        let workload = dir.join("workload.txt");
        std::fs::write(
            &workload,
            "\
ktg terms=t0,t1,t2 p=2 k=1 n=2
dktg terms=t0,t1,t2 p=2 k=1 n=2 gamma=0.5
insert 0 1
ktg terms=t0,t1,t2 p=2 k=1 n=2
",
        )
        .unwrap();
        let base = [
            "batch",
            "--workload", workload.to_str().unwrap(),
            "--edges", edges.to_str().unwrap(),
            "--keywords", keywords.to_str().unwrap(),
            "--threads", "1",
        ];
        let answers = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| l.starts_with('[') || l.starts_with("    #"))
                .map(String::from)
                .collect()
        };
        let flat = answers(&run_to_string(&base).unwrap());
        assert!(!flat.is_empty());

        // The compressed format must answer byte-identically.
        let mut compressed = base.to_vec();
        compressed.extend(["--graph-format", "compressed"]);
        assert_eq!(answers(&run_to_string(&compressed).unwrap()), flat);

        // Bundle the network + index, then serve the same workload from
        // the bundle — byte-identical again, in both formats.
        let bundle = dir.join("net.bundle");
        let built = run_to_string(&[
            "index",
            "--edges", edges.to_str().unwrap(),
            "--keywords", keywords.to_str().unwrap(),
            "--bundle", bundle.to_str().unwrap(),
        ])
        .unwrap();
        assert!(built.contains("bundled flat graph"), "{built}");
        for fmt in ["flat", "compressed"] {
            let from_bundle = run_to_string(&[
                "batch",
                "--workload", workload.to_str().unwrap(),
                "--bundle", bundle.to_str().unwrap(),
                "--graph-format", fmt,
                "--threads", "1",
            ])
            .unwrap();
            assert_eq!(answers(&from_bundle), flat, "bundle/{fmt} diverged");
        }

        // A compressed-format bundle reloads identically too.
        let cbundle = dir.join("net-compressed.bundle");
        run_to_string(&[
            "index",
            "--edges", edges.to_str().unwrap(),
            "--keywords", keywords.to_str().unwrap(),
            "--graph-format", "compressed",
            "--bundle", cbundle.to_str().unwrap(),
        ])
        .unwrap();
        let from_cbundle = run_to_string(&[
            "batch",
            "--workload", workload.to_str().unwrap(),
            "--bundle", cbundle.to_str().unwrap(),
            "--threads", "1",
        ])
        .unwrap();
        assert_eq!(answers(&from_cbundle), flat);

        // Query straight off a bundle (index reused, no rebuild).
        let q = run_to_string(&[
            "query",
            "--bundle", bundle.to_str().unwrap(),
            "--terms", "t0,t1,t2",
            "-p", "2", "-k", "1", "-n", "2",
        ])
        .unwrap();
        assert!(q.contains("KTG query"), "{q}");

        // Unknown format is a clean error.
        let mut bad = base.to_vec();
        bad.extend(["--graph-format", "zstd"]);
        assert!(run_to_string(&bad).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_profile_is_a_clean_error() {
        let err = run_to_string(&["generate", "--profile", "nope", "--out", "/tmp/x"]);
        assert!(err.is_err());
    }

    #[test]
    fn query_requires_terms_or_random() {
        let dir = temp_dir("noterms");
        let out = dir.to_str().unwrap();
        run_to_string(&[
            "generate", "--profile", "brightkite", "--scale", "800", "--seed", "1", "--out", out,
        ])
        .unwrap();
        let edges = dir.join("edges.txt");
        let err = run_to_string(&["query", "--edges", edges.to_str().unwrap()]);
        assert!(err.is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_flag_returns_identical_groups() {
        let dir = temp_dir("parallel");
        let out = dir.to_str().unwrap();
        run_to_string(&[
            "generate", "--profile", "brightkite", "--scale", "400", "--seed", "11", "--out", out,
        ])
        .unwrap();
        let edges = dir.join("edges.txt");
        let keywords = dir.join("keywords.txt");
        let base = [
            "query",
            "--edges", edges.to_str().unwrap(),
            "--keywords", keywords.to_str().unwrap(),
            "--random-terms", "5",
            "-p", "3", "-k", "1", "-n", "3",
        ];
        // The "#rank: members" lines must be byte-identical across thread
        // counts and kernels; stats lines (node counts) legitimately vary.
        let groups = |text: &str| -> Vec<String> {
            text.lines().filter(|l| l.starts_with('#')).map(String::from).collect()
        };
        let mut seq = base.to_vec();
        seq.extend(["--threads", "1"]);
        let sequential = groups(&run_to_string(&seq).unwrap());
        assert!(!sequential.is_empty());
        for extra in [
            &["--threads", "4"][..],
            &["--parallel", "true"][..],
            &["--threads", "4", "--bitmap-threshold", "0"][..],
        ] {
            let mut argv = base.to_vec();
            argv.extend(extra.iter().copied());
            assert_eq!(groups(&run_to_string(&argv).unwrap()), sequential, "{extra:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_replays_workload_and_caches() {
        let dir = temp_dir("batch");
        let out = dir.to_str().unwrap();
        run_to_string(&[
            "generate", "--profile", "brightkite", "--scale", "400", "--seed", "7", "--out", out,
        ])
        .unwrap();
        let edges = dir.join("edges.txt");
        let keywords = dir.join("keywords.txt");
        // Terms t0.. exist in every synthetic profile's vocabulary.
        let workload = dir.join("workload.txt");
        std::fs::write(
            &workload,
            "\
# repeated query with an update in between
ktg terms=t0,t1,t2 p=2 k=1 n=2
ktg terms=t0,t1,t2 p=2 k=1 n=2
dktg terms=t0,t1,t2 p=2 k=1 n=2 gamma=0.5
insert 0 1
ktg terms=t0,t1,t2 p=2 k=1 n=2
",
        )
        .unwrap();
        let base = [
            "batch",
            "--workload", workload.to_str().unwrap(),
            "--edges", edges.to_str().unwrap(),
            "--keywords", keywords.to_str().unwrap(),
        ];
        let mut seq = base.to_vec();
        seq.extend(["--threads", "1"]);
        let text = run_to_string(&seq).unwrap();
        assert!(text.contains("[2] ktg:"), "{text}");
        assert!(text.contains("[cached]"), "repeat must hit the cache:\n{text}");
        assert!(text.contains("[4] update:"), "{text}");
        assert!(text.contains("served:"), "{text}");

        // Group lines must be identical across threads and cache modes
        // (the [cached] markers and stats line legitimately differ).
        let groups = |text: &str| -> Vec<String> {
            text.lines().filter(|l| l.starts_with("    #")).map(String::from).collect()
        };
        let reference = groups(&text);
        assert!(!reference.is_empty());
        for extra in [&["--threads", "4"][..], &["--no-cache"][..]] {
            let mut argv = base.to_vec();
            argv.extend(extra.iter().copied());
            assert_eq!(groups(&run_to_string(&argv).unwrap()), reference, "{extra:?}");
        }
        let mut no_cache = base.to_vec();
        no_cache.push("--no-cache");
        assert!(!run_to_string(&no_cache).unwrap().contains("[cached]"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pll_oracle_matches_nlrnl_in_query_and_batch() {
        let dir = temp_dir("pll");
        let out = dir.to_str().unwrap();
        run_to_string(&[
            "generate", "--profile", "brightkite", "--scale", "400", "--seed", "9", "--out", out,
        ])
        .unwrap();
        let edges = dir.join("edges.txt");
        let keywords = dir.join("keywords.txt");
        let groups = |text: &str, prefix: &str| -> Vec<String> {
            text.lines().filter(|l| l.starts_with(prefix)).map(String::from).collect()
        };

        // `query --oracle pll` (in-process and via a persisted index) is
        // byte-identical to the NLRNL answer for the same query.
        let base = [
            "query",
            "--edges", edges.to_str().unwrap(),
            "--keywords", keywords.to_str().unwrap(),
            "--random-terms", "5",
            "-p", "3", "-k", "1", "-n", "3",
        ];
        let reference = groups(&run_to_string(&base).unwrap(), "#");
        assert!(!reference.is_empty());
        let mut pll = base.to_vec();
        pll.extend(["--oracle", "pll"]);
        assert_eq!(groups(&run_to_string(&pll).unwrap(), "#"), reference);
        let idx_path = dir.join("pll.idx");
        let built = run_to_string(&[
            "index",
            "--edges", edges.to_str().unwrap(),
            "--oracle", "pll",
            "--out", idx_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(built.contains("built PLL"), "{built}");
        let mut loaded = pll.clone();
        loaded.extend(["--index", idx_path.to_str().unwrap()]);
        assert_eq!(groups(&run_to_string(&loaded).unwrap(), "#"), reference);

        // Batch: the serving axes (--oracle pll, --cache-policy fifo,
        // --no-subset-reuse) never change the group lines.
        let workload = dir.join("workload.txt");
        std::fs::write(
            &workload,
            "\
ktg terms=t0,t1,t2,t3,t4 p=2 k=1 n=2
ktg terms=t0,t1,t2 p=2 k=1 n=2
insert 0 1
ktg terms=t0,t1,t2 p=2 k=1 n=2
",
        )
        .unwrap();
        let batch = [
            "batch",
            "--workload", workload.to_str().unwrap(),
            "--edges", edges.to_str().unwrap(),
            "--keywords", keywords.to_str().unwrap(),
        ];
        let text = run_to_string(&batch).unwrap();
        let reference = groups(&text, "    #");
        assert!(!reference.is_empty());
        assert!(text.contains("subset-seeded"), "{text}");
        for extra in [
            &["--oracle", "pll"][..],
            &["--cache-policy", "fifo"][..],
            &["--no-subset-reuse"][..],
        ] {
            let mut argv = batch.to_vec();
            argv.extend(extra.iter().copied());
            assert_eq!(groups(&run_to_string(&argv).unwrap(), "    #"), reference, "{extra:?}");
        }
        let mut bad = batch.to_vec();
        bad.extend(["--cache-policy", "lru"]);
        assert!(run_to_string(&bad).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_reports_workload_parse_errors() {
        let dir = temp_dir("batch-err");
        let out = dir.to_str().unwrap();
        run_to_string(&[
            "generate", "--profile", "brightkite", "--scale", "800", "--seed", "7", "--out", out,
        ])
        .unwrap();
        let workload = dir.join("bad.txt");
        std::fs::write(&workload, "ktg terms=t0 p=0 k=1 n=1\n").unwrap();
        let err = run_to_string(&[
            "batch",
            "--workload", workload.to_str().unwrap(),
            "--edges", dir.join("edges.txt").to_str().unwrap(),
        ])
        .expect_err("invalid p must fail");
        assert!(err.to_string().contains("line 1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn status_line_and_degraded_exit_path() {
        let dir = temp_dir("status");
        let out = dir.to_str().unwrap();
        run_to_string(&[
            "generate", "--profile", "brightkite", "--scale", "400", "--seed", "5", "--out", out,
        ])
        .unwrap();
        let edges = dir.join("edges.txt");
        let keywords = dir.join("keywords.txt");
        let base = [
            "query",
            "--edges", edges.to_str().unwrap(),
            "--keywords", keywords.to_str().unwrap(),
            "--random-terms", "5",
            "-p", "3", "-k", "1", "-n", "3",
        ];
        // A generous deadline never fires: status stays exact and the
        // groups are identical to the unbudgeted run.
        let (status, text) = run_with_status(&base).unwrap();
        assert_eq!(status, RunStatus::Complete);
        assert!(text.contains("status: exact"), "{text}");
        let groups = |t: &str| -> Vec<String> {
            t.lines().filter(|l| l.starts_with('#')).map(String::from).collect()
        };
        let mut generous = base.to_vec();
        generous.extend(["--deadline-ms", "600000"]);
        let (status, budgeted) = run_with_status(&generous).unwrap();
        assert_eq!(status, RunStatus::Complete);
        assert_eq!(groups(&budgeted), groups(&text), "unfired deadline must not change answers");
        // A 1-node budget degrades deterministically; the run still
        // returns (anytime best-so-far) and reports it.
        let mut tight = base.to_vec();
        tight.extend(["--node-budget", "1"]);
        let (status, degraded) = run_with_status(&tight).unwrap();
        assert_eq!(status, RunStatus::Degraded);
        assert!(degraded.contains("status: degraded(node-budget)"), "{degraded}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_max_inflight_and_budget_report_partial() {
        let dir = temp_dir("batch-partial");
        let out = dir.to_str().unwrap();
        run_to_string(&[
            "generate", "--profile", "brightkite", "--scale", "400", "--seed", "7", "--out", out,
        ])
        .unwrap();
        let workload = dir.join("workload.txt");
        std::fs::write(
            &workload,
            "\
ktg terms=t0,t1,t2 p=2 k=1 n=2
ktg terms=t0,t1,t3 p=2 k=1 n=2
ktg terms=t0,t2,t3 p=2 k=1 n=2
",
        )
        .unwrap();
        let edges = dir.join("edges.txt");
        let keywords = dir.join("keywords.txt");
        let base = [
            "batch",
            "--workload", workload.to_str().unwrap(),
            "--edges", edges.to_str().unwrap(),
            "--keywords", keywords.to_str().unwrap(),
            "--threads", "1",
        ];
        // Regression: a shed run must report Overloaded (exit 4), not
        // fold into the generic Degraded exit — shedding is a capacity
        // decision, and scripts retrying on exit 4 must be able to tell
        // it apart from partial answers.
        let mut capped = base.to_vec();
        capped.extend(["--max-inflight", "1"]);
        let (status, text) = run_with_status(&capped).unwrap();
        assert_eq!(status, RunStatus::Overloaded);
        assert!(text.contains("[2] overloaded: shed by --max-inflight 1"), "{text}");
        assert!(text.contains("partial: 0 degraded, 0 failed, 2 overloaded"), "{text}");
        let mut budgeted = base.to_vec();
        budgeted.extend(["--node-budget", "1"]);
        let (status, text) = run_with_status(&budgeted).unwrap();
        assert_eq!(status, RunStatus::Degraded);
        assert!(text.contains("[degraded(node-budget)]"), "{text}");
        assert!(text.contains("partial: 3 degraded, 0 failed, 0 overloaded"), "{text}");
        // Shed + degraded together: shedding takes precedence.
        let mut both = base.to_vec();
        both.extend(["--max-inflight", "1", "--node-budget", "1"]);
        let (status, text) = run_with_status(&both).unwrap();
        assert_eq!(status, RunStatus::Overloaded);
        assert!(text.contains("partial: 1 degraded, 0 failed, 2 overloaded"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn author_exclusion_flag_runs() {
        let dir = temp_dir("authors");
        let out = dir.to_str().unwrap();
        run_to_string(&[
            "generate", "--profile", "brightkite", "--scale", "400", "--seed", "3", "--out", out,
        ])
        .unwrap();
        let edges = dir.join("edges.txt");
        let keywords = dir.join("keywords.txt");
        let q = run_to_string(&[
            "query",
            "--edges", edges.to_str().unwrap(),
            "--keywords", keywords.to_str().unwrap(),
            "--random-terms", "5",
            "--authors", "0,1",
            "-p", "3", "-k", "1", "-n", "2",
        ])
        .unwrap();
        assert!(q.contains("excluded"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The persistent TCP serving front-end (`ktg serve`) and its client.
//!
//! A hand-rolled `std::net` server wrapping [`ServeSession`] — no
//! external crates, in keeping with the workspace's zero-dependency
//! budget. The protocol is deliberately the thinnest possible layer over
//! what already exists:
//!
//! * **Requests are workload lines.** Every request line goes through
//!   [`ktg_core::serve::parse_request_line`] — the same grammar, byte
//!   cap, CRLF handling, and fault-injection site as `ktg batch` reading
//!   a file.
//! * **Responses are batch output.** Every response block is rendered by
//!   the same code path as `ktg batch` ([`crate::commands::write_outcome`]),
//!   terminated by a single `.` line so clients know where a block ends.
//!   The differential suite (`tests/tests/net_diff.rs`) holds TCP
//!   responses byte-identical to a batch replay of the same script.
//! * **Control lines start with `/`:** `/stats` (one-line JSON of cache,
//!   latency percentile, and outcome counters), `/health` (one-line JSON
//!   of serving state, epoch, and WAL/checkpoint sequences), `/checkpoint`
//!   (rewrite the bundle, truncate the log), `/drain` (shed all new
//!   queries as `overloaded` until `/resume`), `/resume`, `/shutdown`.
//!
//! ## Durability
//!
//! With `--wal <path>`, every accepted update line is appended to a
//! [`ktg_index::wal`] write-ahead log *before* it can mutate the
//! session (fsync policy `--wal-sync always|batch`), under the
//! session's write lock so log order always equals apply order. On
//! startup the log is replayed over the loaded network (tolerating one
//! torn tail record; mid-log corruption is a typed startup error), and
//! the listener accepts connections immediately while a recovery task
//! re-applies the surviving records — workload lines are refused with
//! an in-band error until the `/health` state leaves `recovering`.
//! `/checkpoint` (or `--checkpoint-every N` appends) rewrites the
//! bundle under a temp-file + atomic-rename protocol and truncates the
//! log. `KTG_CRASH_AFTER=<n>` aborts the process after `n` appends —
//! the crash-injection harness the recovery tests drive.
//!
//! ## Concurrency model
//!
//! One listener thread accepts connections into a queue; a fixed pool of
//! worker threads (spawned together via [`scope_join`]) each take one
//! connection at a time and serve it to completion. The session sits
//! behind an [`RwLock`]: queries run concurrently under the read lock
//! through [`ServeSession::answer_query`], while edge updates serialize
//! behind the write lock through [`ServeSession::apply_item`] — the same
//! "updates are serialization points" semantics the batch executor has,
//! extended across connections.
//!
//! Admission control is a global in-flight gauge: when `--max-inflight`
//! queries are already executing (or the server is draining), a new
//! query is refused with a structured `overloaded` response — the
//! connection stays open and the client can retry — never by dropping
//! the connection. Per-connection wall-clock deadlines ride on the
//! existing [`CancelToken`], polled between requests.
//!
//! Shutdown is cooperative: the flag flips, the condvar wakes the pool,
//! a loopback self-connect unblocks `accept`, and every socket carries a
//! short read timeout so no worker can wedge on an idle peer.

use crate::args::ParsedArgs;
use crate::commands::{load_network_ex, serve_options_from_flags, write_outcome};
use crate::RunStatus;
use ktg_common::fault::{self, FaultSite};
use ktg_common::net::{write_line, Frame, LineReader};
use ktg_common::parallel::{scope_join, worker_count};
use ktg_common::rng::SplitMix64;
use ktg_common::{CancelToken, KtgError, Result, Stopwatch};
use ktg_core::serve::workload::{WorkloadItem, MAX_LINE_BYTES};
use ktg_core::serve::{parse_request_line, ItemOutcome, ServeOptions, ServeSession};
use ktg_core::AttributedGraph;
use ktg_index::wal::{WalSync, WalWriter};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::Duration;

/// Socket read timeout: the cadence at which blocked workers re-check
/// the shutdown flag and the connection deadline. Short enough that
/// shutdown feels immediate, long enough to cost nothing.
const POLL_READ_TIMEOUT: Duration = Duration::from_millis(200);

/// The framer's cap is slightly above the parser's so that a line at
/// exactly [`MAX_LINE_BYTES`] (+ CRLF framing) reaches the parser and
/// gets the parser's precise, line-numbered error; only lines beyond
/// any legitimate length are cut at the framing layer.
const READER_CAP: usize = MAX_LINE_BYTES + 16;

/// Number of latency-sample stripes in [`ServerStats`]. Like the cache
/// shards: enough that concurrent workers rarely contend on one lock.
const LATENCY_STRIPES: usize = 8;

/// Ring capacity per stripe: percentiles reflect the most recent
/// `LATENCY_STRIPES * 1024` requests.
const SAMPLES_PER_STRIPE: usize = 1024;

fn lock_mutex<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One stripe of the latency ring: most recent samples, overwritten in
/// arrival order once full.
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

/// Lock-striped request instrumentation for one server.
///
/// Counters are plain atomics; latency samples go into a striped ring
/// (stripe picked round-robin) so concurrent workers do not serialize
/// on one mutex. Percentiles merge and sort all stripes at `/stats`
/// time — the expensive path is the rare one.
pub struct ServerStats {
    requests: AtomicU64,
    degraded: AtomicU64,
    overloaded: AtomicU64,
    failed: AtomicU64,
    /// Response blocks that could not be written back (peer gone,
    /// broken pipe, injected `io` fault). Each one closed a connection
    /// with a half-written (or unwritten) block; surfacing the count
    /// through `/stats` makes that loss observable instead of silent.
    write_failures: AtomicU64,
    next_stripe: AtomicUsize,
    stripes: Vec<Mutex<LatencyRing>>,
}

impl ServerStats {
    fn new() -> Self {
        ServerStats {
            requests: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
            next_stripe: AtomicUsize::new(0),
            stripes: (0..LATENCY_STRIPES)
                .map(|_| Mutex::new(LatencyRing { samples: Vec::new(), next: 0 }))
                .collect(),
        }
    }

    /// Records one response block lost to a write failure.
    fn record_write_failure(&self) {
        self.write_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one served item: its latency sample and outcome class.
    fn record(&self, latency_ns: u64, outcome: &ItemOutcome) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match outcome {
            ItemOutcome::Ktg(ans) if !ans.status.is_exact() => {
                self.degraded.fetch_add(1, Ordering::Relaxed);
            }
            ItemOutcome::Dktg(ans) if !ans.status.is_exact() => {
                self.degraded.fetch_add(1, Ordering::Relaxed);
            }
            ItemOutcome::Failed { .. } => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
            ItemOutcome::Overloaded => {
                self.overloaded.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        let stripe = self.next_stripe.fetch_add(1, Ordering::Relaxed) % LATENCY_STRIPES;
        let mut ring = lock_mutex(&self.stripes[stripe]);
        if ring.samples.len() < SAMPLES_PER_STRIPE {
            ring.samples.push(latency_ns);
        } else {
            let at = ring.next;
            ring.samples[at] = latency_ns;
        }
        ring.next = (ring.next + 1) % SAMPLES_PER_STRIPE;
    }

    /// A shed item: counted, but no latency sample (nothing executed).
    fn record_shed(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// `(samples, p50, p95, p99)` over the retained window, by
    /// nearest-rank on the merged, sorted samples. All zeros when empty.
    fn percentiles(&self) -> (usize, u64, u64, u64) {
        let mut all: Vec<u64> = Vec::new();
        for stripe in &self.stripes {
            all.extend_from_slice(&lock_mutex(stripe).samples);
        }
        if all.is_empty() {
            return (0, 0, 0, 0);
        }
        all.sort_unstable();
        let rank = |p: usize| -> u64 {
            // Nearest-rank: ceil(p/100 * n), 1-based, clamped.
            let idx = (all.len() * p).div_ceil(100).clamp(1, all.len()) - 1;
            all[idx]
        };
        (all.len(), rank(50), rank(95), rank(99))
    }
}

/// Durability configuration for one server (`--wal` and friends).
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Log path; created if missing, replayed (and torn-tail-truncated)
    /// if present.
    pub path: PathBuf,
    /// Fsync policy for appended records.
    pub sync: WalSync,
    /// Checkpoint automatically after this many appended updates
    /// (`0` = only on explicit `/checkpoint`).
    pub checkpoint_every: u64,
    /// Bundle path checkpoints rewrite (temp file + atomic rename);
    /// `None` disables checkpointing with an in-band error.
    pub bundle: Option<PathBuf>,
}

/// Server configuration (beyond the session's [`ServeOptions`]).
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub bind: String,
    /// Connection-serving worker threads; `0` = auto
    /// ([`worker_count`], honoring `KTG_THREADS`).
    pub workers: usize,
    /// Per-connection wall-clock deadline in milliseconds, polled
    /// between requests; `None` = connections live until EOF.
    pub conn_deadline_ms: Option<u64>,
    /// Write-ahead logging; `None` = updates die with the process.
    pub wal: Option<WalConfig>,
    /// Session options: cache, engine, and the `max_inflight` admission
    /// bound (here enforced globally across connections).
    pub options: ServeOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".to_string(),
            workers: 0,
            conn_deadline_ms: None,
            wal: None,
            options: ServeOptions::default(),
        }
    }
}

/// Mutable WAL state, behind one mutex (always acquired *after* the
/// session lock — the same order the update path and `/checkpoint`
/// use, so the pair can never deadlock).
struct WalState {
    writer: WalWriter,
    checkpoint_every: u64,
    /// Appends since the last checkpoint (or since startup).
    since_checkpoint: u64,
    /// Sequence captured by the last checkpoint (startup: the replayed
    /// log's base).
    last_checkpoint_seq: u64,
    bundle: Option<PathBuf>,
    /// Crash-injection countdown (`KTG_CRASH_AFTER`): aborts the
    /// process after this many more appends.
    crash_after: Option<u64>,
}

/// What recovery found in the log at startup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Updates replayed from the log.
    pub replayed: u64,
    /// Whether a torn tail record was dropped (and truncated away).
    pub torn_tail: bool,
}

/// State shared between the listener, the worker pool, and connection
/// handlers.
struct Shared {
    session: RwLock<ServeSession>,
    stats: ServerStats,
    pending: Mutex<VecDeque<TcpStream>>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    draining: AtomicBool,
    /// True while the startup recovery task is still replaying WAL
    /// records; workload lines are refused in-band until it clears.
    recovering: AtomicBool,
    /// Durable update log (`--wal`); see [`WalState`] for lock order.
    wal: Option<Mutex<WalState>>,
    inflight: AtomicUsize,
    max_inflight: usize,
    conn_deadline_ms: Option<u64>,
    /// The bound address, kept so shutdown can poke the listener out of
    /// its blocking `accept` with a throwaway loopback connection.
    addr: SocketAddr,
}

impl Shared {
    fn read_session(&self) -> std::sync::RwLockReadGuard<'_, ServeSession> {
        match self.session.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write_session(&self) -> std::sync::RwLockWriteGuard<'_, ServeSession> {
        match self.session.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Tries to claim an admission slot for one query. Refused while
    /// draining or when `max_inflight` queries are already executing.
    fn try_admit(&self) -> bool {
        if self.draining.load(Ordering::Relaxed) {
            return false;
        }
        if self.max_inflight == 0 {
            return true;
        }
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if current >= self.max_inflight {
                return false;
            }
            match self.inflight.compare_exchange(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    fn release_admission(&self) {
        if self.max_inflight != 0 {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
        }
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake blocked workers; unblock the listener's accept with a
        // throwaway loopback connection (it checks the flag first).
        self.wakeup.notify_all();
        drop(TcpStream::connect(self.addr));
    }
}

/// A running server: its bound address plus the join handle.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<()>,
    recovered: Option<RecoveryInfo>,
}

impl ServerHandle {
    /// The actual bound address (resolves `:0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What startup recovery replayed from the WAL (`None` without
    /// `--wal`).
    pub fn recovered(&self) -> Option<RecoveryInfo> {
        self.recovered
    }

    /// Requests shutdown without a client round-trip (tests, drop paths;
    /// the wire equivalent is the `/shutdown` control line).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the server exits (via `/shutdown` or
    /// [`ServerHandle::shutdown`]).
    ///
    /// # Errors
    /// [`KtgError::Internal`]-shaped input error if the server thread
    /// panicked (individual connection handlers never panic the pool:
    /// item execution is isolated inside the session).
    pub fn join(self) -> Result<()> {
        self.thread
            .join()
            .map_err(|_| KtgError::input("server thread panicked".to_string()))
    }
}

/// Binds `cfg.bind`, spawns the listener + worker pool, and returns
/// once the socket is accepting (queries may be served immediately).
///
/// # Errors
/// I/O errors from binding the listener.
pub fn start(net: AttributedGraph, cfg: ServeConfig) -> Result<ServerHandle> {
    start_with_index(net, cfg, None)
}

/// [`start`] with a pre-built NLRNL index (the `--bundle` reload path).
///
/// # Errors
/// I/O errors from binding the listener.
pub fn start_with_index(
    net: AttributedGraph,
    cfg: ServeConfig,
    index: Option<ktg_index::NlrnlIndex>,
) -> Result<ServerHandle> {
    // Open the log first: replay errors (mid-log corruption, a query
    // line where only updates belong) are typed startup failures, not
    // something to discover after the socket is accepting.
    let mut recovered = None;
    let mut recovery: Vec<WorkloadItem> = Vec::new();
    let wal_state = match &cfg.wal {
        None => None,
        Some(wal_cfg) => {
            let (writer, replayed) = WalWriter::open(&wal_cfg.path, wal_cfg.sync)?;
            for (i, record) in replayed.records.iter().enumerate() {
                let item = parse_request_line(&net, i + 1, &record.line)?.ok_or_else(|| {
                    KtgError::input(format!(
                        "WAL record {} is not an update line: `{}`",
                        record.seq, record.line
                    ))
                })?;
                if item.is_query() {
                    return Err(KtgError::input(format!(
                        "WAL record {} is a query line: `{}`",
                        record.seq, record.line
                    )));
                }
                recovery.push(item);
            }
            recovered = Some(RecoveryInfo {
                replayed: recovery.len() as u64,
                torn_tail: replayed.torn_tail,
            });
            let crash_after = std::env::var("KTG_CRASH_AFTER")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok());
            Some(Mutex::new(WalState {
                last_checkpoint_seq: replayed.base_seq,
                writer,
                checkpoint_every: wal_cfg.checkpoint_every,
                since_checkpoint: 0,
                bundle: wal_cfg.bundle.clone(),
                crash_after,
            }))
        }
    };
    let listener = TcpListener::bind(cfg.bind.as_str())?;
    let addr = listener.local_addr()?;
    let workers = match cfg.workers {
        0 => worker_count(),
        w => w,
    };
    let max_inflight = cfg.options.max_inflight;
    let shared = Arc::new(Shared {
        session: RwLock::new(ServeSession::with_index(net, cfg.options, index)),
        stats: ServerStats::new(),
        pending: Mutex::new(VecDeque::new()),
        wakeup: Condvar::new(),
        shutdown: AtomicBool::new(false),
        draining: AtomicBool::new(false),
        recovering: AtomicBool::new(!recovery.is_empty()),
        wal: wal_state,
        inflight: AtomicUsize::new(0),
        max_inflight,
        conn_deadline_ms: cfg.conn_deadline_ms,
        addr,
    });
    let pool = Arc::clone(&shared);
    let thread = std::thread::spawn(move || {
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers + 2);
        let listener_shared = &pool;
        tasks.push(Box::new(move || listener_loop(listener_shared, &listener)));
        if !recovery.is_empty() {
            // Replay under the write lock, one record at a time — the
            // exact apply path a live update takes, which is what makes
            // the recovered session byte-identical to a never-crashed
            // one. Connections are accepted meanwhile; workload lines
            // are refused until the flag clears.
            let recovery_shared = &pool;
            tasks.push(Box::new(move || {
                for item in &recovery {
                    recovery_shared.write_session().apply_item(item);
                }
                recovery_shared.recovering.store(false, Ordering::SeqCst);
            }));
        }
        for _ in 0..workers {
            let worker_shared = &pool;
            tasks.push(Box::new(move || worker_loop(worker_shared)));
        }
        scope_join(tasks);
    });
    Ok(ServerHandle { addr, shared, thread, recovered })
}

/// Accepts connections into the pending queue until shutdown.
fn listener_loop(shared: &Shared, listener: &TcpListener) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                lock_mutex(&shared.pending).push_back(stream);
                shared.wakeup.notify_one();
            }
            // Transient accept failures (EMFILE, aborted handshake):
            // keep listening — a serving process must outlive them.
            Err(_) => continue,
        }
    }
    // Shutting down: wake everyone so the pool drains and exits.
    shared.wakeup.notify_all();
}

/// One pool worker: takes connections from the queue and serves each to
/// completion; exits when shutdown is flagged and the queue is empty.
fn worker_loop(shared: &Shared) {
    loop {
        let next = {
            let mut pending = lock_mutex(&shared.pending);
            loop {
                if let Some(stream) = pending.pop_front() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                pending = match shared.wakeup.wait_timeout(pending, POLL_READ_TIMEOUT) {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        match next {
            Some(stream) => serve_connection(shared, stream),
            None => return,
        }
    }
}

/// Serves one connection: request lines in, response blocks out, until
/// EOF, a connection-deadline expiry, an I/O failure, or shutdown.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    // The read timeout doubles as the shutdown/deadline poll cadence;
    // NODELAY because responses are small and latency-sensitive.
    drop(stream.set_read_timeout(Some(POLL_READ_TIMEOUT)));
    drop(stream.set_nodelay(true));
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = LineReader::new(stream, READER_CAP);
    let deadline = CancelToken::for_deadline_ms(shared.conn_deadline_ms);
    // Response linenos equal the item's position in the connection's
    // stream of parsed items (1-based) — exactly `ktg batch`'s output
    // numbering for the same script.
    let mut items_seen = 0usize;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if deadline.as_ref().is_some_and(CancelToken::poll) {
            // The connection closes either way; respond() itself counts
            // a failed farewell write into `write_failures`.
            let _ = respond(&shared.stats, &mut writer, &["error: connection deadline exceeded"]);
            return;
        }
        let frame = match reader.read_frame() {
            Ok(frame) => frame,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        };
        let outcome = match frame {
            Frame::Eof => return,
            Frame::Overlong { bytes } => {
                // Mirrors the parser's cap error (same `error: {KtgError}`
                // rendering); the framer only cuts in when the line is
                // beyond even the framing slack.
                let msg = format!(
                    "error: {}",
                    KtgError::input(format!(
                        "workload line {}: line is {bytes} bytes, exceeds {MAX_LINE_BYTES} bytes",
                        items_seen + 1
                    ))
                );
                respond(&shared.stats, &mut writer, &[msg.as_str()])
            }
            Frame::Line(line) => handle_line(shared, &mut writer, &mut items_seen, &line),
        };
        match outcome {
            LineOutcome::Continue => {}
            LineOutcome::Close => return,
        }
    }
}

enum LineOutcome {
    Continue,
    Close,
}

/// Writes one response block: the given lines plus the `.` terminator,
/// flushed. Any I/O failure (or an injected `io` fault standing in for
/// one) closes the connection *and is counted* — a half-written block
/// must show up in `/stats` as a `write_failures` tick, never vanish.
fn respond(stats: &ServerStats, writer: &mut impl Write, lines: &[&str]) -> LineOutcome {
    if fault::should_fail(FaultSite::ServeIo) {
        stats.record_write_failure();
        return LineOutcome::Close;
    }
    for line in lines {
        if write_line(writer, line).is_err() {
            stats.record_write_failure();
            return LineOutcome::Close;
        }
    }
    if write_line(writer, ".").is_err() || writer.flush().is_err() {
        stats.record_write_failure();
        return LineOutcome::Close;
    }
    LineOutcome::Continue
}

/// Handles one request line end-to-end (parse, execute, respond).
fn handle_line(
    shared: &Shared,
    writer: &mut impl Write,
    items_seen: &mut usize,
    line: &str,
) -> LineOutcome {
    if let Some(control) = line.strip_prefix('/') {
        return handle_control(shared, writer, control);
    }
    if shared.recovering.load(Ordering::SeqCst) {
        // Half-recovered state must never answer or mutate; the line
        // consumes no item slot so a retrying client's numbering is
        // unaffected. `/health` reports `recovering` for poll loops.
        return respond(
            &shared.stats,
            writer,
            &["error: server is recovering from its write-ahead log, retry shortly"],
        );
    }
    let parsed = {
        let session = shared.read_session();
        parse_request_line(session.net(), *items_seen + 1, line)
    };
    let item = match parsed {
        // Blank or comment: acknowledged with an empty block so request
        // and response streams stay in lockstep for pipelining clients.
        Ok(None) => return respond(&shared.stats, writer, &[]),
        Ok(Some(item)) => item,
        Err(e) => {
            let msg = format!("error: {e}");
            return respond(&shared.stats, writer, &[msg.as_str()]);
        }
    };
    *items_seen += 1;
    let lineno = *items_seen;
    let outcome = if item.is_query() {
        if !shared.try_admit() {
            shared.stats.record_shed();
            ItemOutcome::Overloaded
        } else {
            let timer = Stopwatch::start();
            let outcome = shared.read_session().answer_query(&item);
            shared.release_admission();
            shared.stats.record(timer.elapsed_nanos(), &outcome);
            outcome
        }
    } else {
        // Edge update: the cross-connection serialization point. The
        // write lock is taken *before* the WAL append so log order
        // always equals apply order — two racing updates cannot swap
        // between the log and the session.
        let timer = Stopwatch::start();
        let mut session = shared.write_session();
        if let Some(wal) = &shared.wal {
            if let Err(e) = wal_append(&mut lock_mutex(wal), line) {
                drop(session);
                let msg = format!("error: {e}");
                return respond(&shared.stats, writer, &[msg.as_str()]);
            }
        }
        let outcome = session.apply_item(&item);
        if let Some(wal) = &shared.wal {
            maybe_checkpoint(&session, &mut lock_mutex(wal));
        }
        drop(session);
        shared.stats.record(timer.elapsed_nanos(), &outcome);
        outcome
    };
    let mut block = Vec::new();
    if write_outcome(&mut block, lineno, &outcome, shared.max_inflight).is_err() {
        return LineOutcome::Close;
    }
    let text = String::from_utf8_lossy(&block);
    let lines: Vec<&str> = text.lines().collect();
    respond(&shared.stats, writer, &lines)
}

/// Appends one accepted update line to the log, with the executor's
/// retry-once discipline for injected `wal` faults (the site fires
/// inside [`WalWriter::append`], before any appender state changes, so
/// a suppressed retry starts from untouched state). Also drives the
/// `KTG_CRASH_AFTER` harness: the process aborts right after the n-th
/// record becomes durable — *before* the update is applied, the
/// crash point recovery exists to cover.
fn wal_append(st: &mut WalState, line: &str) -> Result<u64> {
    let appended = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        st.writer.append(line)
    })) {
        Ok(result) => result,
        Err(payload) if fault::is_injected(payload.as_ref()) => {
            fault::suppressed(|| st.writer.append(line))
        }
        Err(payload) => std::panic::resume_unwind(payload),
    };
    let seq = appended?;
    st.since_checkpoint += 1;
    if let Some(left) = st.crash_after.as_mut() {
        *left = left.saturating_sub(1);
        if *left == 0 {
            // Make the record durable regardless of sync policy, then
            // die exactly as hard as a kill -9 would.
            drop(st.writer.sync());
            std::process::abort();
        }
    }
    Ok(seq)
}

/// Runs the automatic checkpoint when `--checkpoint-every` is due.
/// Failures are swallowed deliberately: a checkpoint is an optimization
/// (the log already holds everything), so a full disk must not fail the
/// update that triggered it — the next `/checkpoint` reports the error
/// in-band instead.
fn maybe_checkpoint(session: &ServeSession, st: &mut WalState) {
    if st.checkpoint_every > 0 && st.since_checkpoint >= st.checkpoint_every {
        drop(checkpoint(session, st));
    }
}

/// Rewrites the bundle from the live session under a temp-file +
/// atomic-rename protocol, then truncates the log. Caller holds the
/// session lock (read or write) and the WAL mutex, in that order. A
/// crash between the rename and the truncate is benign: replaying the
/// whole old log onto the checkpointed state is a no-op fixpoint.
fn checkpoint(session: &ServeSession, st: &mut WalState) -> Result<u64> {
    let Some(bundle) = st.bundle.clone() else {
        return Err(KtgError::input(
            "checkpoint requires a --bundle path to rewrite".to_string(),
        ));
    };
    let mut tmp = bundle.clone().into_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let net = session.net();
    let mut writer = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
    ktg_index::persist::save_bundle(
        net.graph(),
        net.vocab(),
        net.keywords(),
        session.nlrnl_index(),
        &mut writer,
    )?;
    writer.flush()?;
    let file = writer.into_inner().map_err(|e| KtgError::Io(e.into_error()))?;
    // The rename is only atomic if the bytes are on disk first.
    file.sync_data()?;
    drop(file);
    std::fs::rename(&tmp, &bundle)?;
    st.writer.truncate()?;
    st.last_checkpoint_seq = st.writer.seq();
    st.since_checkpoint = 0;
    Ok(st.last_checkpoint_seq)
}

/// Handles a `/control` line.
fn handle_control(shared: &Shared, writer: &mut impl Write, control: &str) -> LineOutcome {
    match control {
        "stats" => {
            let line = stats_line(shared);
            respond(&shared.stats, writer, &[line.as_str()])
        }
        "health" => {
            let line = health_line(shared);
            respond(&shared.stats, writer, &[line.as_str()])
        }
        "checkpoint" => {
            let Some(wal) = &shared.wal else {
                return respond(
                    &shared.stats,
                    writer,
                    &["error: checkpoint requires the server to run with --wal"],
                );
            };
            // Same order as the update path: session lock, then WAL.
            // The read lock freezes updates for the bundle rewrite
            // while letting queries flow.
            let session = shared.read_session();
            let result = checkpoint(&session, &mut lock_mutex(wal));
            drop(session);
            match result {
                Ok(seq) => {
                    let msg = format!("checkpointed: bundle rewritten at seq {seq}, log truncated");
                    respond(&shared.stats, writer, &[msg.as_str()])
                }
                Err(e) => {
                    let msg = format!("error: {e}");
                    respond(&shared.stats, writer, &[msg.as_str()])
                }
            }
        }
        "drain" => {
            shared.draining.store(true, Ordering::Relaxed);
            // Draining is the moment durability matters most: make any
            // batch-policy tail durable before traffic moves away.
            if let Some(wal) = &shared.wal {
                drop(lock_mutex(wal).writer.sync());
            }
            respond(&shared.stats, writer, &["draining: new queries will be shed as overloaded"])
        }
        "resume" => {
            shared.draining.store(false, Ordering::Relaxed);
            respond(&shared.stats, writer, &["resumed: admission re-enabled"])
        }
        "shutdown" => {
            // Acknowledge first: the flag closes every connection,
            // including this one, right after. Sync the log so a
            // batch-policy tail survives the exit.
            if let Some(wal) = &shared.wal {
                drop(lock_mutex(wal).writer.sync());
            }
            let _ = respond(&shared.stats, writer, &["shutting down"]);
            shared.begin_shutdown();
            LineOutcome::Close
        }
        other => {
            let msg = format!(
                "error: unknown control line `/{other}` (expected /stats, /health, /checkpoint, /drain, /resume, /shutdown)"
            );
            respond(&shared.stats, writer, &[msg.as_str()])
        }
    }
}

/// Renders the `/health` response: one line, `health: ` plus a flat
/// JSON object. `state` is `recovering` (startup replay in progress),
/// `draining`, or `serving`; `wal_seq`/`checkpoint_seq` are 0 without
/// `--wal`. Clients poll this before replaying after a reconnect.
fn health_line(shared: &Shared) -> String {
    let state = if shared.recovering.load(Ordering::SeqCst) {
        "recovering"
    } else if shared.draining.load(Ordering::Relaxed) {
        "draining"
    } else {
        "serving"
    };
    let epoch = shared.read_session().epoch();
    let (wal_seq, checkpoint_seq) = match &shared.wal {
        Some(wal) => {
            let st = lock_mutex(wal);
            (st.writer.seq(), st.last_checkpoint_seq)
        }
        None => (0, 0),
    };
    format!(
        "health: {{\"state\":\"{state}\",\"epoch\":{epoch},\"wal_seq\":{wal_seq},\"checkpoint_seq\":{checkpoint_seq}}}"
    )
}

/// Renders the `/stats` response: one line, `stats: ` plus a flat JSON
/// object (hand-rolled — every value is an unsigned integer).
fn stats_line(shared: &Shared) -> String {
    let session_stats = shared.read_session().stats();
    let (samples, p50, p95, p99) = shared.stats.percentiles();
    let fields: &[(&str, u64)] = &[
        ("requests", shared.stats.requests.load(Ordering::Relaxed)),
        ("degraded", shared.stats.degraded.load(Ordering::Relaxed)),
        ("overloaded", shared.stats.overloaded.load(Ordering::Relaxed)),
        ("failed", shared.stats.failed.load(Ordering::Relaxed)),
        ("write_failures", shared.stats.write_failures.load(Ordering::Relaxed)),
        ("result_hits", session_stats.result_hits),
        ("result_misses", session_stats.result_misses),
        ("result_reclaimed", session_stats.result_reclaimed),
        ("subset_hits", session_stats.subset_hits),
        ("compactions", session_stats.compactions),
        ("row_hits", session_stats.row_hits),
        ("row_misses", session_stats.row_misses),
        ("row_evictions", session_stats.row_evictions),
        ("epoch", session_stats.epoch),
        ("inflight", shared.inflight.load(Ordering::Relaxed) as u64),
        ("latency_samples", samples as u64),
        ("p50_ns", p50),
        ("p95_ns", p95),
        ("p99_ns", p99),
    ];
    let body: Vec<String> =
        fields.iter().map(|(name, value)| format!("\"{name}\":{value}")).collect();
    format!("stats: {{{}}}", body.join(","))
}

/// `ktg serve` dispatch: server mode (`--edges`) or client mode
/// (`--connect`).
pub(crate) fn serve_cmd(args: &ParsedArgs, out: &mut dyn Write) -> Result<RunStatus> {
    if args.optional("connect").is_some() {
        return client_cmd(args, out);
    }
    let (net, preloaded) = load_network_ex(args)?;
    let options = serve_options_from_flags(args)?;
    let conn_deadline_ms = match args.optional("conn-deadline-ms") {
        None => None,
        Some(_) => Some(args.required_num::<u64>("conn-deadline-ms")?),
    };
    let wal = match args.optional("wal") {
        None => None,
        Some(path) => Some(WalConfig {
            path: PathBuf::from(path),
            sync: WalSync::parse(args.optional("wal-sync").unwrap_or("always"))?,
            checkpoint_every: args.num_or("checkpoint-every", 0)?,
            bundle: args.optional("bundle").map(PathBuf::from),
        }),
    };
    let cfg = ServeConfig {
        bind: args.optional("bind").unwrap_or("127.0.0.1:0").to_string(),
        workers: args.num_or("workers", 0)?,
        conn_deadline_ms,
        wal,
        options,
    };
    let workers = if cfg.workers == 0 { worker_count() } else { cfg.workers };
    let cache = if cfg.options.use_cache {
        format!("on ({} entries)", cfg.options.cache_entries)
    } else {
        "off".to_string()
    };
    let max_inflight = cfg.options.max_inflight;
    let handle = start_with_index(net, cfg, preloaded)?;
    if let Some(info) = handle.recovered() {
        // Greppable recovery report for scripts and the CI crash smoke.
        writeln!(
            out,
            "wal: recovered {} update{}{}",
            info.replayed,
            if info.replayed == 1 { "" } else { "s" },
            if info.torn_tail { " (torn tail truncated)" } else { "" }
        )?;
    }
    // One greppable line with the resolved address: scripts (and the CI
    // smoke) parse the ephemeral port out of it.
    writeln!(
        out,
        "serving on {} ({workers} workers, cache {cache}, max-inflight {max_inflight})",
        handle.addr()
    )?;
    out.flush()?;
    handle.join()?;
    writeln!(out, "server stopped")?;
    Ok(RunStatus::Complete)
}

/// `ktg serve --connect ADDR [--workload FILE] [--stats] [--shutdown]
/// [--retry N] [--retry-base-ms MS]`: replays a workload over one
/// connection, printing every response block verbatim (minus the `.`
/// terminators), then optionally fetches `/stats` and/or requests
/// `/shutdown`.
///
/// With `--retry N` a dropped connection (refused connect, reset, or a
/// close mid-response) is retried up to `N` times: the client sleeps a
/// deterministic seeded exponential backoff, polls `/health` until the
/// server reports `serving` again, reconnects, and resumes from the
/// first request line it never saw a full response for. Update lines
/// set the presence of one specific edge, so resending the line whose
/// response was lost mid-flight converges to the same state.
fn client_cmd(args: &ParsedArgs, out: &mut dyn Write) -> Result<RunStatus> {
    let addr = args.required("connect")?;
    let retries = args.num_or::<u64>("retry", 0)?;
    let base_ms = args.num_or::<u64>("retry-base-ms", 50)?;
    // The full request script: workload lines, then the optional
    // trailing controls. Retries resume from the first unanswered step.
    let mut steps: Vec<String> = match args.optional("workload") {
        Some(path) => std::fs::read_to_string(path)?.lines().map(str::to_string).collect(),
        None => Vec::new(),
    };
    if args.optional("stats").is_some() {
        steps.push("/stats".to_string());
    }
    if args.optional("shutdown").is_some() {
        steps.push("/shutdown".to_string());
    }
    client_replay(addr, &steps, retries, base_ms, out)
}

/// The client's retry loop: replays `steps` against `addr`, resuming
/// after connection-shaped failures up to `retries` times (see
/// [`client_cmd`]).
fn client_replay(
    addr: &str,
    steps: &[String],
    retries: u64,
    base_ms: u64,
    out: &mut dyn Write,
) -> Result<RunStatus> {
    let mut status = RunStatus::Complete;
    let mut next_step = 0usize;
    let mut attempt = 0u64;
    // Fixed seed: the backoff schedule is part of the reproducible
    // client behavior, not a source of true randomness.
    let mut rng = SplitMix64::new(0x6b74_675f_7265_7472);
    loop {
        match run_client_once(addr, steps, &mut next_step, out, &mut status) {
            Ok(()) => return Ok(status),
            Err(e) if attempt < retries && is_retryable(&e) => {
                attempt += 1;
                writeln!(out, "retry: attempt {attempt}/{retries} after: {e}")?;
                out.flush()?;
                backoff_sleep(base_ms, attempt, &mut rng);
                wait_healthy(addr, base_ms, &mut rng);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Connection-shaped failures are worth a reconnect; protocol errors
/// (oversized frames, bad flags) are not.
fn is_retryable(e: &KtgError) -> bool {
    match e {
        KtgError::Io(_) => true,
        other => other.to_string().contains("closed the connection"),
    }
}

/// Deterministic exponential backoff with seeded jitter:
/// `base << (attempt-1)` milliseconds (capped at 64x) plus up to one
/// extra base interval drawn from the client's fixed-seed generator.
fn backoff_sleep(base_ms: u64, attempt: u64, rng: &mut SplitMix64) {
    let shift = (attempt.saturating_sub(1)).min(6);
    let jitter = rng.next_u64() % base_ms.max(1);
    let delay = base_ms.saturating_mul(1u64 << shift).saturating_add(jitter);
    std::thread::sleep(Duration::from_millis(delay));
}

/// Polls `/health` (bounded attempts) until the server reports
/// `"state":"serving"` — i.e. it is back up *and* done replaying its
/// WAL — so the resumed workload doesn't burn its reconnect on a
/// server that is still recovering. Gives up silently after the
/// attempt budget: the caller's reconnect will then fail and consume a
/// retry, keeping the overall loop bounded.
fn wait_healthy(addr: &str, base_ms: u64, rng: &mut SplitMix64) {
    const HEALTH_POLLS: u64 = 10;
    for poll in 1..=HEALTH_POLLS {
        if probe_health(addr).unwrap_or(false) {
            return;
        }
        backoff_sleep(base_ms, poll, rng);
    }
}

/// One `/health` round-trip; `Ok(true)` iff the server answered and
/// reported the `serving` state.
fn probe_health(addr: &str) -> Result<bool> {
    let stream = TcpStream::connect(addr)?;
    drop(stream.set_nodelay(true));
    let mut writer = stream.try_clone()?;
    let mut reader = LineReader::new(stream, READER_CAP * 16);
    write_line(&mut writer, "/health")?;
    writer.flush()?;
    let mut serving = false;
    loop {
        match reader.read_frame()? {
            Frame::Line(line) if line == "." => return Ok(serving),
            Frame::Line(line) => {
                serving = serving || line.contains("\"state\":\"serving\"");
            }
            _ => return Ok(false),
        }
    }
}

/// One connection's worth of the request script: connects, replays
/// `steps[*next_step..]`, and advances `next_step` only after each
/// step's full response block has been read, so a retry resumes at the
/// first request the client never saw answered.
fn run_client_once(
    addr: &str,
    steps: &[String],
    next_step: &mut usize,
    out: &mut dyn Write,
    status: &mut RunStatus,
) -> Result<()> {
    let stream = TcpStream::connect(addr)?;
    drop(stream.set_nodelay(true));
    let mut writer = stream.try_clone()?;
    // Response lines are answer lines; none legitimately exceed the
    // request cap by much, but allow slack for long group listings.
    let mut reader = LineReader::new(stream, READER_CAP * 16);
    while *next_step < steps.len() {
        let line = &steps[*next_step];
        write_line(&mut writer, line)?;
        writer.flush()?;
        read_block(&mut reader, out, status)?;
        *next_step += 1;
    }
    Ok(())
}

/// Reads one response block (through the `.` terminator), echoing its
/// lines to `out` and folding response markers into the run status:
/// `overloaded` responses win over `degraded`/`failed` ones, matching
/// the batch exit-code precedence.
fn read_block(
    reader: &mut LineReader<TcpStream>,
    out: &mut dyn Write,
    status: &mut RunStatus,
) -> Result<()> {
    loop {
        match reader.read_frame()? {
            Frame::Line(line) if line == "." => return Ok(()),
            Frame::Line(line) => {
                if line.contains("] overloaded:") {
                    *status = RunStatus::Overloaded;
                } else if *status == RunStatus::Complete
                    && (line.contains(" [degraded(")
                        || line.contains("] failed:")
                        || line.starts_with("error:"))
                {
                    *status = RunStatus::Degraded;
                }
                writeln!(out, "{line}")?;
            }
            Frame::Overlong { bytes } => {
                return Err(KtgError::input(format!(
                    "oversized response line ({bytes} bytes) from server"
                )));
            }
            Frame::Eof => {
                return Err(KtgError::input(
                    "server closed the connection mid-response".to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktg_core::fixtures;

    /// Starts a figure-1 server and returns (handle, a connected
    /// line-framed client).
    fn boot(
        options: ServeOptions,
        conn_deadline_ms: Option<u64>,
    ) -> (ServerHandle, LineReader<TcpStream>, TcpStream) {
        let cfg = ServeConfig {
            workers: 2,
            conn_deadline_ms,
            options,
            ..ServeConfig::default()
        };
        let handle = start(fixtures::figure1(), cfg).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let writer = stream.try_clone().unwrap();
        (handle, LineReader::new(stream, READER_CAP * 16), writer)
    }

    fn request(
        reader: &mut LineReader<TcpStream>,
        writer: &mut TcpStream,
        line: &str,
    ) -> Vec<String> {
        write_line(writer, line).unwrap();
        writer.flush().unwrap();
        let mut block = Vec::new();
        loop {
            match reader.read_frame().unwrap() {
                Frame::Line(l) if l == "." => return block,
                Frame::Line(l) => block.push(l),
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }

    const PAPER_QUERY: &str = "ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2";

    /// TCP responses are the batch renderer's bytes for the same item.
    #[test]
    fn responses_match_batch_rendering() {
        let opts = ServeOptions { threads: 1, ..ServeOptions::default() };
        let (handle, mut reader, mut writer) = boot(opts.clone(), None);
        let block = request(&mut reader, &mut writer, PAPER_QUERY);
        // Reference: the same item through ServeSession + write_outcome.
        let mut session = ServeSession::new(fixtures::figure1(), opts);
        let items =
            ktg_core::serve::parse_workload(PAPER_QUERY, session.net()).unwrap();
        let outcome = &session.run(&items)[0];
        let mut expect = Vec::new();
        write_outcome(&mut expect, 1, outcome, 0).unwrap();
        let expect: Vec<String> =
            String::from_utf8(expect).unwrap().lines().map(String::from).collect();
        assert_eq!(block, expect);
        // Repeat: second response is the cached rendering, numbered 2.
        let repeat = request(&mut reader, &mut writer, PAPER_QUERY);
        assert!(repeat[0].starts_with("[2] ktg:"), "{repeat:?}");
        assert!(repeat[0].contains("[cached]"), "{repeat:?}");
        handle.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn updates_comments_and_errors_flow_through() {
        let opts = ServeOptions { threads: 1, ..ServeOptions::default() };
        let (handle, mut reader, mut writer) = boot(opts, None);
        assert_eq!(request(&mut reader, &mut writer, "# warmup"), Vec::<String>::new());
        assert_eq!(request(&mut reader, &mut writer, ""), Vec::<String>::new());
        let block = request(&mut reader, &mut writer, "insert 0 5");
        assert_eq!(block, vec!["[1] update: applied".to_string()]);
        let block = request(&mut reader, &mut writer, "insert 0 5");
        assert_eq!(block, vec!["[2] update: no-op".to_string()]);
        // Parse errors respond in-band and do not consume an item slot.
        let block = request(&mut reader, &mut writer, "bogus line");
        assert!(block[0].starts_with("error: invalid input: workload line 3:"), "{block:?}");
        let block = request(&mut reader, &mut writer, "remove 0 5");
        assert_eq!(block, vec!["[3] update: applied".to_string()]);
        // CRLF framing parses (the network client case behind the
        // workload parser's `\r` handling).
        let block = request(&mut reader, &mut writer, "insert 0 5\r");
        assert_eq!(block, vec!["[4] update: applied".to_string()]);
        handle.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn stats_drain_resume_and_shutdown_controls() {
        let opts =
            ServeOptions { threads: 1, max_inflight: 4, ..ServeOptions::default() };
        let (handle, mut reader, mut writer) = boot(opts, None);
        let answered = request(&mut reader, &mut writer, PAPER_QUERY);
        assert!(answered[0].starts_with("[1] ktg:"), "{answered:?}");
        // Drain: queries shed with the batch's overloaded line; updates
        // still apply (dropping them would fork the graph state).
        let block = request(&mut reader, &mut writer, "/drain");
        assert!(block[0].starts_with("draining"), "{block:?}");
        let shed = request(&mut reader, &mut writer, PAPER_QUERY);
        assert_eq!(shed, vec!["[2] overloaded: shed by --max-inflight 4".to_string()]);
        let upd = request(&mut reader, &mut writer, "insert 0 5");
        assert_eq!(upd, vec!["[3] update: applied".to_string()]);
        let block = request(&mut reader, &mut writer, "/resume");
        assert!(block[0].starts_with("resumed"), "{block:?}");
        let answered = request(&mut reader, &mut writer, PAPER_QUERY);
        assert!(answered[0].starts_with("[4] ktg:"), "{answered:?}");
        // Stats: one `stats: {json}` line with every advertised field.
        let block = request(&mut reader, &mut writer, "/stats");
        assert_eq!(block.len(), 1);
        let line = &block[0];
        for field in [
            "\"requests\":", "\"degraded\":", "\"overloaded\":1", "\"failed\":",
            "\"write_failures\":0",
            "\"result_hits\":", "\"result_misses\":", "\"result_reclaimed\":",
            "\"subset_hits\":", "\"compactions\":", "\"row_hits\":",
            "\"row_misses\":", "\"row_evictions\":", "\"epoch\":1", "\"inflight\":0",
            "\"latency_samples\":", "\"p50_ns\":", "\"p95_ns\":", "\"p99_ns\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
        // Unknown control lines are in-band errors, not disconnects.
        let block = request(&mut reader, &mut writer, "/nope");
        assert!(block[0].starts_with("error: unknown control"), "{block:?}");
        // Shutdown acknowledges, then the server exits.
        let block = request(&mut reader, &mut writer, "/shutdown");
        assert_eq!(block, vec!["shutting down".to_string()]);
        handle.join().unwrap();
    }

    #[test]
    fn connection_deadline_closes_with_an_error_line() {
        let opts = ServeOptions { threads: 1, ..ServeOptions::default() };
        // Deadline 0: expired before the first request completes the
        // poll — deterministic without sleeping.
        let (handle, mut reader, mut writer) = boot(opts, Some(0));
        write_line(&mut writer, PAPER_QUERY).unwrap();
        writer.flush().unwrap();
        // The handler may serve the first request before its next
        // deadline poll, but must emit the deadline error and close
        // within a frame or two.
        let mut saw_deadline = false;
        loop {
            match reader.read_frame() {
                Ok(Frame::Line(line)) => {
                    if line == "error: connection deadline exceeded" {
                        saw_deadline = true;
                    }
                }
                Ok(Frame::Eof) => break,
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => break,
            }
        }
        assert!(saw_deadline, "deadline expiry must be reported in-band");
        handle.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_connections_share_the_session_cache() {
        let opts = ServeOptions { threads: 1, ..ServeOptions::default() };
        let (handle, mut reader, mut writer) = boot(opts, None);
        let first = request(&mut reader, &mut writer, PAPER_QUERY);
        assert!(!first[0].contains("[cached]"));
        // A *second* connection hits the entry the first one warmed.
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut w2 = stream.try_clone().unwrap();
        let mut r2 = LineReader::new(stream, READER_CAP * 16);
        let second = request(&mut r2, &mut w2, PAPER_QUERY);
        assert!(second[0].contains("[cached]"), "{second:?}");
        handle.shutdown();
        handle.join().unwrap();
    }

    // -- durability ---------------------------------------------------------

    /// Fresh per-test scratch directory under the system temp dir.
    fn wal_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ktg-serve-{tag}-{}", std::process::id()));
        drop(std::fs::remove_dir_all(&dir));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn wal_cfg(path: PathBuf) -> WalConfig {
        WalConfig { path, sync: WalSync::Always, checkpoint_every: 0, bundle: None }
    }

    /// Starts a figure-1 server with a WAL attached.
    fn boot_wal(wal: WalConfig) -> (ServerHandle, LineReader<TcpStream>, TcpStream) {
        let cfg = ServeConfig {
            workers: 2,
            options: ServeOptions { threads: 1, ..ServeOptions::default() },
            wal: Some(wal),
            ..ServeConfig::default()
        };
        let handle = start(fixtures::figure1(), cfg).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let writer = stream.try_clone().unwrap();
        (handle, LineReader::new(stream, READER_CAP * 16), writer)
    }

    /// Polls `/health` until the startup recovery task finishes.
    fn await_serving(reader: &mut LineReader<TcpStream>, writer: &mut TcpStream) {
        for _ in 0..500 {
            let block = request(reader, writer, "/health");
            if block[0].contains("\"state\":\"serving\"") {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("server never reached the serving state");
    }

    /// Serializes tests that arm the process-global fault registry.
    fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Updates are logged (queries and parse errors are not), and a
    /// fresh server over the same log replays them to the identical
    /// session state before answering in-band requests.
    #[test]
    fn wal_recovery_replays_updates() {
        let dir = wal_dir("recover");
        let wal = dir.join("updates.wal");
        let (handle, mut reader, mut writer) = boot_wal(wal_cfg(wal.clone()));
        assert_eq!(
            request(&mut reader, &mut writer, "insert 0 5"),
            vec!["[1] update: applied".to_string()]
        );
        assert_eq!(
            request(&mut reader, &mut writer, "remove 0 5"),
            vec!["[2] update: applied".to_string()]
        );
        assert_eq!(
            request(&mut reader, &mut writer, "insert 0 5"),
            vec!["[3] update: applied".to_string()]
        );
        // Neither queries nor parse errors consume a log sequence slot.
        request(&mut reader, &mut writer, PAPER_QUERY);
        request(&mut reader, &mut writer, "bogus line");
        let health = request(&mut reader, &mut writer, "/health");
        assert!(health[0].contains("\"state\":\"serving\""), "{health:?}");
        assert!(health[0].contains("\"wal_seq\":3"), "{health:?}");
        request(&mut reader, &mut writer, "/shutdown");
        handle.join().unwrap();

        // Restart: a pristine figure-1 net + the surviving log.
        let (handle, mut reader, mut writer) = boot_wal(wal_cfg(wal));
        assert_eq!(
            handle.recovered(),
            Some(RecoveryInfo { replayed: 3, torn_tail: false })
        );
        await_serving(&mut reader, &mut writer);
        // The replayed insert left edge 0-5 present.
        assert_eq!(
            request(&mut reader, &mut writer, "insert 0 5"),
            vec!["[1] update: no-op".to_string()]
        );
        // Sequence numbering continued past the replayed records.
        let health = request(&mut reader, &mut writer, "/health");
        assert!(health[0].contains("\"wal_seq\":4"), "{health:?}");
        request(&mut reader, &mut writer, "/shutdown");
        handle.join().unwrap();
    }

    /// A crash mid-append leaves a prefix of the final record; recovery
    /// drops it, truncates the file back, and reports the torn tail.
    #[test]
    fn torn_wal_tail_recovers_with_truncation() {
        let dir = wal_dir("torn");
        let wal = dir.join("updates.wal");
        let (handle, mut reader, mut writer) = boot_wal(wal_cfg(wal.clone()));
        request(&mut reader, &mut writer, "insert 0 5");
        request(&mut reader, &mut writer, "/shutdown");
        handle.join().unwrap();
        let clean_len = std::fs::metadata(&wal).unwrap().len();
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&[24, 0, 0, 0, 7, 7, 7]).unwrap();
        drop(f);
        let (handle, mut reader, mut writer) = boot_wal(wal_cfg(wal.clone()));
        assert_eq!(
            handle.recovered(),
            Some(RecoveryInfo { replayed: 1, torn_tail: true })
        );
        assert_eq!(std::fs::metadata(&wal).unwrap().len(), clean_len);
        await_serving(&mut reader, &mut writer);
        assert_eq!(
            request(&mut reader, &mut writer, "insert 0 5"),
            vec!["[1] update: no-op".to_string()]
        );
        request(&mut reader, &mut writer, "/shutdown");
        handle.join().unwrap();
    }

    /// Damage *before* the tail cannot be a crash artifact: startup
    /// refuses with a typed error instead of truncating or panicking.
    #[test]
    fn corrupt_wal_is_a_typed_startup_error() {
        let dir = wal_dir("corrupt");
        let wal = dir.join("updates.wal");
        let (handle, mut reader, mut writer) = boot_wal(wal_cfg(wal.clone()));
        request(&mut reader, &mut writer, "insert 0 5");
        request(&mut reader, &mut writer, "remove 0 5");
        request(&mut reader, &mut writer, "/shutdown");
        handle.join().unwrap();
        // Flip one payload byte inside the first record.
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes[20 + 4 + 8] ^= 0x40;
        std::fs::write(&wal, &bytes).unwrap();
        let cfg = ServeConfig {
            workers: 2,
            options: ServeOptions { threads: 1, ..ServeOptions::default() },
            wal: Some(wal_cfg(wal)),
            ..ServeConfig::default()
        };
        match start(fixtures::figure1(), cfg) {
            Err(KtgError::InvalidInput(_)) => {}
            Err(other) => panic!("expected a typed input error, got {other}"),
            Ok(_) => panic!("corrupt wal must fail startup"),
        }
    }

    /// `/checkpoint` rewrites the bundle and truncates the log; a
    /// restart from the bundle alone carries the checkpointed state,
    /// and sequence numbering continues from the checkpoint.
    #[test]
    fn checkpoint_rewrites_bundle_and_truncates_log() {
        let dir = wal_dir("checkpoint");
        let wal = dir.join("updates.wal");
        let bundle = dir.join("net.bundle");
        let cfg = WalConfig {
            path: wal.clone(),
            sync: WalSync::Always,
            checkpoint_every: 0,
            bundle: Some(bundle.clone()),
        };
        let (handle, mut reader, mut writer) = boot_wal(cfg.clone());
        request(&mut reader, &mut writer, "insert 0 5");
        let block = request(&mut reader, &mut writer, "/checkpoint");
        assert!(block[0].starts_with("checkpointed:"), "{block:?}");
        let health = request(&mut reader, &mut writer, "/health");
        assert!(health[0].contains("\"wal_seq\":1"), "{health:?}");
        assert!(health[0].contains("\"checkpoint_seq\":1"), "{health:?}");
        request(&mut reader, &mut writer, "/shutdown");
        handle.join().unwrap();
        assert!(bundle.exists());
        assert!(!dir.join("net.bundle.tmp").exists());

        // The truncated log holds nothing to replay; the bundle holds
        // the update.
        let loaded =
            ktg_index::persist::load_bundle(std::fs::File::open(&bundle).unwrap())
                .unwrap();
        let net =
            AttributedGraph::with_store(loaded.graph, loaded.vocab, loaded.keywords);
        let cfg2 = ServeConfig {
            workers: 2,
            options: ServeOptions { threads: 1, ..ServeOptions::default() },
            wal: Some(cfg),
            ..ServeConfig::default()
        };
        let handle = start(net, cfg2).unwrap();
        assert_eq!(
            handle.recovered(),
            Some(RecoveryInfo { replayed: 0, torn_tail: false })
        );
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut w2 = stream.try_clone().unwrap();
        let mut r2 = LineReader::new(stream, READER_CAP * 16);
        assert_eq!(
            request(&mut r2, &mut w2, "insert 0 5"),
            vec!["[1] update: no-op".to_string()]
        );
        let health = request(&mut r2, &mut w2, "/health");
        assert!(health[0].contains("\"wal_seq\":2"), "{health:?}");
        request(&mut r2, &mut w2, "/shutdown");
        handle.join().unwrap();
    }

    /// `/health` renders the flat one-line JSON and tracks the drain
    /// state; `/checkpoint` without `--wal` is an in-band error.
    #[test]
    fn health_line_states_and_checkpoint_guard() {
        let opts = ServeOptions { threads: 1, ..ServeOptions::default() };
        let (handle, mut reader, mut writer) = boot(opts, None);
        let health = request(&mut reader, &mut writer, "/health");
        assert_eq!(
            health,
            vec![
                r#"health: {"state":"serving","epoch":0,"wal_seq":0,"checkpoint_seq":0}"#
                    .to_string()
            ]
        );
        let block = request(&mut reader, &mut writer, "/checkpoint");
        assert!(block[0].starts_with("error: checkpoint requires"), "{block:?}");
        request(&mut reader, &mut writer, "/drain");
        let health = request(&mut reader, &mut writer, "/health");
        assert!(health[0].contains("\"state\":\"draining\""), "{health:?}");
        request(&mut reader, &mut writer, "/resume");
        let health = request(&mut reader, &mut writer, "/health");
        assert!(health[0].contains("\"state\":\"serving\""), "{health:?}");
        handle.shutdown();
        handle.join().unwrap();
    }

    /// Write errors on the response path are counted, never dropped.
    #[test]
    fn response_write_errors_are_counted() {
        struct Refuse;
        impl Write for Refuse {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "refused"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let stats = ServerStats::new();
        assert!(matches!(respond(&stats, &mut Refuse, &["x"]), LineOutcome::Close));
        assert_eq!(stats.write_failures.load(Ordering::Relaxed), 1);
    }

    /// The retrying client survives a server that is not up yet: it
    /// backs off deterministically, polls `/health`, reconnects, and
    /// completes the whole script once the server appears. (The wire
    /// equivalent of `--connect ... --retry N` racing a restart.)
    #[test]
    fn client_retries_until_the_server_appears() {
        // Reserve a loopback port, then free it for the real server.
        let addr = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().to_string()
        };
        let steps: Vec<String> =
            ["insert 0 5", "/health", "/shutdown"].map(String::from).to_vec();
        let client_addr = addr.clone();
        let client = std::thread::spawn(move || {
            let mut out = Vec::new();
            let status = client_replay(&client_addr, &steps, 30, 5, &mut out);
            (status, String::from_utf8(out).unwrap())
        });
        // Let the client burn at least one connect-refused attempt.
        std::thread::sleep(Duration::from_millis(30));
        let cfg = ServeConfig {
            bind: addr,
            workers: 2,
            options: ServeOptions { threads: 1, ..ServeOptions::default() },
            ..ServeConfig::default()
        };
        let handle = start(fixtures::figure1(), cfg).unwrap();
        let (status, out) = client.join().unwrap();
        assert!(matches!(status, Ok(RunStatus::Complete)), "{status:?}: {out}");
        assert!(out.contains("retry: attempt 1/30"), "no retry recorded: {out}");
        assert!(out.contains("[1] update: applied"), "{out}");
        assert!(out.contains("\"state\":\"serving\""), "{out}");
        assert!(out.contains("shutting down"), "{out}");
        handle.join().unwrap();
    }

    /// An injected `wal` fault is absorbed by the append's retry: the
    /// update still lands in both the log and the session.
    #[test]
    fn injected_wal_fault_is_retried() {
        let _guard = fault_lock();
        let dir = wal_dir("fault");
        let wal = dir.join("updates.wal");
        fault::set_config(Some(fault::FaultConfig::new(&[FaultSite::WalAppend], 1.0, 7)));
        let (handle, mut reader, mut writer) = boot_wal(wal_cfg(wal.clone()));
        let block = request(&mut reader, &mut writer, "insert 0 5");
        fault::set_config(None);
        assert_eq!(block, vec!["[1] update: applied".to_string()]);
        request(&mut reader, &mut writer, "/shutdown");
        handle.join().unwrap();
        // The retried append produced one well-formed record.
        let replayed = ktg_index::wal::replay(&wal).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.records[0].line, "insert 0 5");
        assert!(!replayed.torn_tail);
    }
}

//! The persistent TCP serving front-end (`ktg serve`) and its client.
//!
//! A hand-rolled `std::net` server wrapping [`ServeSession`] — no
//! external crates, in keeping with the workspace's zero-dependency
//! budget. The protocol is deliberately the thinnest possible layer over
//! what already exists:
//!
//! * **Requests are workload lines.** Every request line goes through
//!   [`ktg_core::serve::parse_request_line`] — the same grammar, byte
//!   cap, CRLF handling, and fault-injection site as `ktg batch` reading
//!   a file.
//! * **Responses are batch output.** Every response block is rendered by
//!   the same code path as `ktg batch` ([`crate::commands::write_outcome`]),
//!   terminated by a single `.` line so clients know where a block ends.
//!   The differential suite (`tests/tests/net_diff.rs`) holds TCP
//!   responses byte-identical to a batch replay of the same script.
//! * **Control lines start with `/`:** `/stats` (one-line JSON of cache,
//!   latency percentile, and outcome counters), `/drain` (shed all new
//!   queries as `overloaded` until `/resume`), `/resume`, `/shutdown`.
//!
//! ## Concurrency model
//!
//! One listener thread accepts connections into a queue; a fixed pool of
//! worker threads (spawned together via [`scope_join`]) each take one
//! connection at a time and serve it to completion. The session sits
//! behind an [`RwLock`]: queries run concurrently under the read lock
//! through [`ServeSession::answer_query`], while edge updates serialize
//! behind the write lock through [`ServeSession::apply_item`] — the same
//! "updates are serialization points" semantics the batch executor has,
//! extended across connections.
//!
//! Admission control is a global in-flight gauge: when `--max-inflight`
//! queries are already executing (or the server is draining), a new
//! query is refused with a structured `overloaded` response — the
//! connection stays open and the client can retry — never by dropping
//! the connection. Per-connection wall-clock deadlines ride on the
//! existing [`CancelToken`], polled between requests.
//!
//! Shutdown is cooperative: the flag flips, the condvar wakes the pool,
//! a loopback self-connect unblocks `accept`, and every socket carries a
//! short read timeout so no worker can wedge on an idle peer.

use crate::args::ParsedArgs;
use crate::commands::{load_network_ex, serve_options_from_flags, write_outcome};
use crate::RunStatus;
use ktg_common::net::{write_line, Frame, LineReader};
use ktg_common::parallel::{scope_join, worker_count};
use ktg_common::{CancelToken, KtgError, Result, Stopwatch};
use ktg_core::serve::workload::MAX_LINE_BYTES;
use ktg_core::serve::{parse_request_line, ItemOutcome, ServeOptions, ServeSession};
use ktg_core::AttributedGraph;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::Duration;

/// Socket read timeout: the cadence at which blocked workers re-check
/// the shutdown flag and the connection deadline. Short enough that
/// shutdown feels immediate, long enough to cost nothing.
const POLL_READ_TIMEOUT: Duration = Duration::from_millis(200);

/// The framer's cap is slightly above the parser's so that a line at
/// exactly [`MAX_LINE_BYTES`] (+ CRLF framing) reaches the parser and
/// gets the parser's precise, line-numbered error; only lines beyond
/// any legitimate length are cut at the framing layer.
const READER_CAP: usize = MAX_LINE_BYTES + 16;

/// Number of latency-sample stripes in [`ServerStats`]. Like the cache
/// shards: enough that concurrent workers rarely contend on one lock.
const LATENCY_STRIPES: usize = 8;

/// Ring capacity per stripe: percentiles reflect the most recent
/// `LATENCY_STRIPES * 1024` requests.
const SAMPLES_PER_STRIPE: usize = 1024;

fn lock_mutex<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One stripe of the latency ring: most recent samples, overwritten in
/// arrival order once full.
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

/// Lock-striped request instrumentation for one server.
///
/// Counters are plain atomics; latency samples go into a striped ring
/// (stripe picked round-robin) so concurrent workers do not serialize
/// on one mutex. Percentiles merge and sort all stripes at `/stats`
/// time — the expensive path is the rare one.
pub struct ServerStats {
    requests: AtomicU64,
    degraded: AtomicU64,
    overloaded: AtomicU64,
    failed: AtomicU64,
    next_stripe: AtomicUsize,
    stripes: Vec<Mutex<LatencyRing>>,
}

impl ServerStats {
    fn new() -> Self {
        ServerStats {
            requests: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            next_stripe: AtomicUsize::new(0),
            stripes: (0..LATENCY_STRIPES)
                .map(|_| Mutex::new(LatencyRing { samples: Vec::new(), next: 0 }))
                .collect(),
        }
    }

    /// Records one served item: its latency sample and outcome class.
    fn record(&self, latency_ns: u64, outcome: &ItemOutcome) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match outcome {
            ItemOutcome::Ktg(ans) if !ans.status.is_exact() => {
                self.degraded.fetch_add(1, Ordering::Relaxed);
            }
            ItemOutcome::Dktg(ans) if !ans.status.is_exact() => {
                self.degraded.fetch_add(1, Ordering::Relaxed);
            }
            ItemOutcome::Failed { .. } => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
            ItemOutcome::Overloaded => {
                self.overloaded.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        let stripe = self.next_stripe.fetch_add(1, Ordering::Relaxed) % LATENCY_STRIPES;
        let mut ring = lock_mutex(&self.stripes[stripe]);
        if ring.samples.len() < SAMPLES_PER_STRIPE {
            ring.samples.push(latency_ns);
        } else {
            let at = ring.next;
            ring.samples[at] = latency_ns;
        }
        ring.next = (ring.next + 1) % SAMPLES_PER_STRIPE;
    }

    /// A shed item: counted, but no latency sample (nothing executed).
    fn record_shed(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// `(samples, p50, p95, p99)` over the retained window, by
    /// nearest-rank on the merged, sorted samples. All zeros when empty.
    fn percentiles(&self) -> (usize, u64, u64, u64) {
        let mut all: Vec<u64> = Vec::new();
        for stripe in &self.stripes {
            all.extend_from_slice(&lock_mutex(stripe).samples);
        }
        if all.is_empty() {
            return (0, 0, 0, 0);
        }
        all.sort_unstable();
        let rank = |p: usize| -> u64 {
            // Nearest-rank: ceil(p/100 * n), 1-based, clamped.
            let idx = (all.len() * p).div_ceil(100).clamp(1, all.len()) - 1;
            all[idx]
        };
        (all.len(), rank(50), rank(95), rank(99))
    }
}

/// Server configuration (beyond the session's [`ServeOptions`]).
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub bind: String,
    /// Connection-serving worker threads; `0` = auto
    /// ([`worker_count`], honoring `KTG_THREADS`).
    pub workers: usize,
    /// Per-connection wall-clock deadline in milliseconds, polled
    /// between requests; `None` = connections live until EOF.
    pub conn_deadline_ms: Option<u64>,
    /// Session options: cache, engine, and the `max_inflight` admission
    /// bound (here enforced globally across connections).
    pub options: ServeOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".to_string(),
            workers: 0,
            conn_deadline_ms: None,
            options: ServeOptions::default(),
        }
    }
}

/// State shared between the listener, the worker pool, and connection
/// handlers.
struct Shared {
    session: RwLock<ServeSession>,
    stats: ServerStats,
    pending: Mutex<VecDeque<TcpStream>>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    draining: AtomicBool,
    inflight: AtomicUsize,
    max_inflight: usize,
    conn_deadline_ms: Option<u64>,
    /// The bound address, kept so shutdown can poke the listener out of
    /// its blocking `accept` with a throwaway loopback connection.
    addr: SocketAddr,
}

impl Shared {
    fn read_session(&self) -> std::sync::RwLockReadGuard<'_, ServeSession> {
        match self.session.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write_session(&self) -> std::sync::RwLockWriteGuard<'_, ServeSession> {
        match self.session.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Tries to claim an admission slot for one query. Refused while
    /// draining or when `max_inflight` queries are already executing.
    fn try_admit(&self) -> bool {
        if self.draining.load(Ordering::Relaxed) {
            return false;
        }
        if self.max_inflight == 0 {
            return true;
        }
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if current >= self.max_inflight {
                return false;
            }
            match self.inflight.compare_exchange(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    fn release_admission(&self) {
        if self.max_inflight != 0 {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
        }
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake blocked workers; unblock the listener's accept with a
        // throwaway loopback connection (it checks the flag first).
        self.wakeup.notify_all();
        drop(TcpStream::connect(self.addr));
    }
}

/// A running server: its bound address plus the join handle.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The actual bound address (resolves `:0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without a client round-trip (tests, drop paths;
    /// the wire equivalent is the `/shutdown` control line).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the server exits (via `/shutdown` or
    /// [`ServerHandle::shutdown`]).
    ///
    /// # Errors
    /// [`KtgError::Internal`]-shaped input error if the server thread
    /// panicked (individual connection handlers never panic the pool:
    /// item execution is isolated inside the session).
    pub fn join(self) -> Result<()> {
        self.thread
            .join()
            .map_err(|_| KtgError::input("server thread panicked".to_string()))
    }
}

/// Binds `cfg.bind`, spawns the listener + worker pool, and returns
/// once the socket is accepting (queries may be served immediately).
///
/// # Errors
/// I/O errors from binding the listener.
pub fn start(net: AttributedGraph, cfg: ServeConfig) -> Result<ServerHandle> {
    start_with_index(net, cfg, None)
}

/// [`start`] with a pre-built NLRNL index (the `--bundle` reload path).
///
/// # Errors
/// I/O errors from binding the listener.
pub fn start_with_index(
    net: AttributedGraph,
    cfg: ServeConfig,
    index: Option<ktg_index::NlrnlIndex>,
) -> Result<ServerHandle> {
    let listener = TcpListener::bind(cfg.bind.as_str())?;
    let addr = listener.local_addr()?;
    let workers = match cfg.workers {
        0 => worker_count(),
        w => w,
    };
    let max_inflight = cfg.options.max_inflight;
    let shared = Arc::new(Shared {
        session: RwLock::new(ServeSession::with_index(net, cfg.options, index)),
        stats: ServerStats::new(),
        pending: Mutex::new(VecDeque::new()),
        wakeup: Condvar::new(),
        shutdown: AtomicBool::new(false),
        draining: AtomicBool::new(false),
        inflight: AtomicUsize::new(0),
        max_inflight,
        conn_deadline_ms: cfg.conn_deadline_ms,
        addr,
    });
    let pool = Arc::clone(&shared);
    let thread = std::thread::spawn(move || {
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers + 1);
        let listener_shared = &pool;
        tasks.push(Box::new(move || listener_loop(listener_shared, &listener)));
        for _ in 0..workers {
            let worker_shared = &pool;
            tasks.push(Box::new(move || worker_loop(worker_shared)));
        }
        scope_join(tasks);
    });
    Ok(ServerHandle { addr, shared, thread })
}

/// Accepts connections into the pending queue until shutdown.
fn listener_loop(shared: &Shared, listener: &TcpListener) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                lock_mutex(&shared.pending).push_back(stream);
                shared.wakeup.notify_one();
            }
            // Transient accept failures (EMFILE, aborted handshake):
            // keep listening — a serving process must outlive them.
            Err(_) => continue,
        }
    }
    // Shutting down: wake everyone so the pool drains and exits.
    shared.wakeup.notify_all();
}

/// One pool worker: takes connections from the queue and serves each to
/// completion; exits when shutdown is flagged and the queue is empty.
fn worker_loop(shared: &Shared) {
    loop {
        let next = {
            let mut pending = lock_mutex(&shared.pending);
            loop {
                if let Some(stream) = pending.pop_front() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                pending = match shared.wakeup.wait_timeout(pending, POLL_READ_TIMEOUT) {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        match next {
            Some(stream) => serve_connection(shared, stream),
            None => return,
        }
    }
}

/// Serves one connection: request lines in, response blocks out, until
/// EOF, a connection-deadline expiry, an I/O failure, or shutdown.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    // The read timeout doubles as the shutdown/deadline poll cadence;
    // NODELAY because responses are small and latency-sensitive.
    drop(stream.set_read_timeout(Some(POLL_READ_TIMEOUT)));
    drop(stream.set_nodelay(true));
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = LineReader::new(stream, READER_CAP);
    let deadline = CancelToken::for_deadline_ms(shared.conn_deadline_ms);
    // Response linenos equal the item's position in the connection's
    // stream of parsed items (1-based) — exactly `ktg batch`'s output
    // numbering for the same script.
    let mut items_seen = 0usize;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if deadline.as_ref().is_some_and(CancelToken::poll) {
            let _ = respond(&mut writer, &["error: connection deadline exceeded"]);
            return;
        }
        let frame = match reader.read_frame() {
            Ok(frame) => frame,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        };
        let outcome = match frame {
            Frame::Eof => return,
            Frame::Overlong { bytes } => {
                // Mirrors the parser's cap error (same `error: {KtgError}`
                // rendering); the framer only cuts in when the line is
                // beyond even the framing slack.
                let msg = format!(
                    "error: {}",
                    KtgError::input(format!(
                        "workload line {}: line is {bytes} bytes, exceeds {MAX_LINE_BYTES} bytes",
                        items_seen + 1
                    ))
                );
                respond(&mut writer, &[msg.as_str()])
            }
            Frame::Line(line) => handle_line(shared, &mut writer, &mut items_seen, &line),
        };
        match outcome {
            LineOutcome::Continue => {}
            LineOutcome::Close => return,
        }
    }
}

enum LineOutcome {
    Continue,
    Close,
}

/// Writes one response block: the given lines plus the `.` terminator,
/// flushed. Any I/O failure closes the connection.
fn respond(writer: &mut impl Write, lines: &[&str]) -> LineOutcome {
    for line in lines {
        if write_line(writer, line).is_err() {
            return LineOutcome::Close;
        }
    }
    if write_line(writer, ".").is_err() || writer.flush().is_err() {
        return LineOutcome::Close;
    }
    LineOutcome::Continue
}

/// Handles one request line end-to-end (parse, execute, respond).
fn handle_line(
    shared: &Shared,
    writer: &mut impl Write,
    items_seen: &mut usize,
    line: &str,
) -> LineOutcome {
    if let Some(control) = line.strip_prefix('/') {
        return handle_control(shared, writer, control);
    }
    let parsed = {
        let session = shared.read_session();
        parse_request_line(session.net(), *items_seen + 1, line)
    };
    let item = match parsed {
        // Blank or comment: acknowledged with an empty block so request
        // and response streams stay in lockstep for pipelining clients.
        Ok(None) => return respond(writer, &[]),
        Ok(Some(item)) => item,
        Err(e) => {
            let msg = format!("error: {e}");
            return respond(writer, &[msg.as_str()]);
        }
    };
    *items_seen += 1;
    let lineno = *items_seen;
    let outcome = if item.is_query() {
        if !shared.try_admit() {
            shared.stats.record_shed();
            ItemOutcome::Overloaded
        } else {
            let timer = Stopwatch::start();
            let outcome = shared.read_session().answer_query(&item);
            shared.release_admission();
            shared.stats.record(timer.elapsed_nanos(), &outcome);
            outcome
        }
    } else {
        // Edge update: the cross-connection serialization point.
        let timer = Stopwatch::start();
        let outcome = shared.write_session().apply_item(&item);
        shared.stats.record(timer.elapsed_nanos(), &outcome);
        outcome
    };
    let mut block = Vec::new();
    if write_outcome(&mut block, lineno, &outcome, shared.max_inflight).is_err() {
        return LineOutcome::Close;
    }
    let text = String::from_utf8_lossy(&block);
    let lines: Vec<&str> = text.lines().collect();
    respond(writer, &lines)
}

/// Handles a `/control` line.
fn handle_control(shared: &Shared, writer: &mut impl Write, control: &str) -> LineOutcome {
    match control {
        "stats" => {
            let line = stats_line(shared);
            respond(writer, &[line.as_str()])
        }
        "drain" => {
            shared.draining.store(true, Ordering::Relaxed);
            respond(writer, &["draining: new queries will be shed as overloaded"])
        }
        "resume" => {
            shared.draining.store(false, Ordering::Relaxed);
            respond(writer, &["resumed: admission re-enabled"])
        }
        "shutdown" => {
            // Acknowledge first: the flag closes every connection,
            // including this one, right after.
            let _ = respond(writer, &["shutting down"]);
            shared.begin_shutdown();
            LineOutcome::Close
        }
        other => {
            let msg = format!(
                "error: unknown control line `/{other}` (expected /stats, /drain, /resume, /shutdown)"
            );
            respond(writer, &[msg.as_str()])
        }
    }
}

/// Renders the `/stats` response: one line, `stats: ` plus a flat JSON
/// object (hand-rolled — every value is an unsigned integer).
fn stats_line(shared: &Shared) -> String {
    let session_stats = shared.read_session().stats();
    let (samples, p50, p95, p99) = shared.stats.percentiles();
    let fields: &[(&str, u64)] = &[
        ("requests", shared.stats.requests.load(Ordering::Relaxed)),
        ("degraded", shared.stats.degraded.load(Ordering::Relaxed)),
        ("overloaded", shared.stats.overloaded.load(Ordering::Relaxed)),
        ("failed", shared.stats.failed.load(Ordering::Relaxed)),
        ("result_hits", session_stats.result_hits),
        ("result_misses", session_stats.result_misses),
        ("result_reclaimed", session_stats.result_reclaimed),
        ("subset_hits", session_stats.subset_hits),
        ("compactions", session_stats.compactions),
        ("row_hits", session_stats.row_hits),
        ("row_misses", session_stats.row_misses),
        ("row_evictions", session_stats.row_evictions),
        ("epoch", session_stats.epoch),
        ("inflight", shared.inflight.load(Ordering::Relaxed) as u64),
        ("latency_samples", samples as u64),
        ("p50_ns", p50),
        ("p95_ns", p95),
        ("p99_ns", p99),
    ];
    let body: Vec<String> =
        fields.iter().map(|(name, value)| format!("\"{name}\":{value}")).collect();
    format!("stats: {{{}}}", body.join(","))
}

/// `ktg serve` dispatch: server mode (`--edges`) or client mode
/// (`--connect`).
pub(crate) fn serve_cmd(args: &ParsedArgs, out: &mut dyn Write) -> Result<RunStatus> {
    if args.optional("connect").is_some() {
        return client_cmd(args, out);
    }
    let (net, preloaded) = load_network_ex(args)?;
    let options = serve_options_from_flags(args)?;
    let conn_deadline_ms = match args.optional("conn-deadline-ms") {
        None => None,
        Some(_) => Some(args.required_num::<u64>("conn-deadline-ms")?),
    };
    let cfg = ServeConfig {
        bind: args.optional("bind").unwrap_or("127.0.0.1:0").to_string(),
        workers: args.num_or("workers", 0)?,
        conn_deadline_ms,
        options,
    };
    let workers = if cfg.workers == 0 { worker_count() } else { cfg.workers };
    let cache = if cfg.options.use_cache {
        format!("on ({} entries)", cfg.options.cache_entries)
    } else {
        "off".to_string()
    };
    let max_inflight = cfg.options.max_inflight;
    let handle = start_with_index(net, cfg, preloaded)?;
    // One greppable line with the resolved address: scripts (and the CI
    // smoke) parse the ephemeral port out of it.
    writeln!(
        out,
        "serving on {} ({workers} workers, cache {cache}, max-inflight {max_inflight})",
        handle.addr()
    )?;
    out.flush()?;
    handle.join()?;
    writeln!(out, "server stopped")?;
    Ok(RunStatus::Complete)
}

/// `ktg serve --connect ADDR [--workload FILE] [--stats] [--shutdown]`:
/// replays a workload over one connection, printing every response
/// block verbatim (minus the `.` terminators), then optionally fetches
/// `/stats` and/or requests `/shutdown`.
fn client_cmd(args: &ParsedArgs, out: &mut dyn Write) -> Result<RunStatus> {
    let addr = args.required("connect")?;
    let stream = TcpStream::connect(addr)?;
    drop(stream.set_nodelay(true));
    let mut writer = stream.try_clone()?;
    // Response lines are answer lines; none legitimately exceed the
    // request cap by much, but allow slack for long group listings.
    let mut reader = LineReader::new(stream, READER_CAP * 16);
    let mut status = RunStatus::Complete;
    if let Some(path) = args.optional("workload") {
        let text = std::fs::read_to_string(path)?;
        for line in text.lines() {
            write_line(&mut writer, line)?;
            writer.flush()?;
            read_block(&mut reader, out, &mut status)?;
        }
    }
    if args.optional("stats").is_some() {
        write_line(&mut writer, "/stats")?;
        writer.flush()?;
        read_block(&mut reader, out, &mut status)?;
    }
    if args.optional("shutdown").is_some() {
        write_line(&mut writer, "/shutdown")?;
        writer.flush()?;
        read_block(&mut reader, out, &mut status)?;
    }
    Ok(status)
}

/// Reads one response block (through the `.` terminator), echoing its
/// lines to `out` and folding response markers into the run status:
/// `overloaded` responses win over `degraded`/`failed` ones, matching
/// the batch exit-code precedence.
fn read_block(
    reader: &mut LineReader<TcpStream>,
    out: &mut dyn Write,
    status: &mut RunStatus,
) -> Result<()> {
    loop {
        match reader.read_frame()? {
            Frame::Line(line) if line == "." => return Ok(()),
            Frame::Line(line) => {
                if line.contains("] overloaded:") {
                    *status = RunStatus::Overloaded;
                } else if *status == RunStatus::Complete
                    && (line.contains(" [degraded(")
                        || line.contains("] failed:")
                        || line.starts_with("error:"))
                {
                    *status = RunStatus::Degraded;
                }
                writeln!(out, "{line}")?;
            }
            Frame::Overlong { bytes } => {
                return Err(KtgError::input(format!(
                    "oversized response line ({bytes} bytes) from server"
                )));
            }
            Frame::Eof => {
                return Err(KtgError::input(
                    "server closed the connection mid-response".to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktg_core::fixtures;

    /// Starts a figure-1 server and returns (handle, a connected
    /// line-framed client).
    fn boot(
        options: ServeOptions,
        conn_deadline_ms: Option<u64>,
    ) -> (ServerHandle, LineReader<TcpStream>, TcpStream) {
        let cfg = ServeConfig {
            workers: 2,
            conn_deadline_ms,
            options,
            ..ServeConfig::default()
        };
        let handle = start(fixtures::figure1(), cfg).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let writer = stream.try_clone().unwrap();
        (handle, LineReader::new(stream, READER_CAP * 16), writer)
    }

    fn request(
        reader: &mut LineReader<TcpStream>,
        writer: &mut TcpStream,
        line: &str,
    ) -> Vec<String> {
        write_line(writer, line).unwrap();
        writer.flush().unwrap();
        let mut block = Vec::new();
        loop {
            match reader.read_frame().unwrap() {
                Frame::Line(l) if l == "." => return block,
                Frame::Line(l) => block.push(l),
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }

    const PAPER_QUERY: &str = "ktg terms=SN,QP,DQ,GQ,GD p=3 k=1 n=2";

    /// TCP responses are the batch renderer's bytes for the same item.
    #[test]
    fn responses_match_batch_rendering() {
        let opts = ServeOptions { threads: 1, ..ServeOptions::default() };
        let (handle, mut reader, mut writer) = boot(opts.clone(), None);
        let block = request(&mut reader, &mut writer, PAPER_QUERY);
        // Reference: the same item through ServeSession + write_outcome.
        let mut session = ServeSession::new(fixtures::figure1(), opts);
        let items =
            ktg_core::serve::parse_workload(PAPER_QUERY, session.net()).unwrap();
        let outcome = &session.run(&items)[0];
        let mut expect = Vec::new();
        write_outcome(&mut expect, 1, outcome, 0).unwrap();
        let expect: Vec<String> =
            String::from_utf8(expect).unwrap().lines().map(String::from).collect();
        assert_eq!(block, expect);
        // Repeat: second response is the cached rendering, numbered 2.
        let repeat = request(&mut reader, &mut writer, PAPER_QUERY);
        assert!(repeat[0].starts_with("[2] ktg:"), "{repeat:?}");
        assert!(repeat[0].contains("[cached]"), "{repeat:?}");
        handle.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn updates_comments_and_errors_flow_through() {
        let opts = ServeOptions { threads: 1, ..ServeOptions::default() };
        let (handle, mut reader, mut writer) = boot(opts, None);
        assert_eq!(request(&mut reader, &mut writer, "# warmup"), Vec::<String>::new());
        assert_eq!(request(&mut reader, &mut writer, ""), Vec::<String>::new());
        let block = request(&mut reader, &mut writer, "insert 0 5");
        assert_eq!(block, vec!["[1] update: applied".to_string()]);
        let block = request(&mut reader, &mut writer, "insert 0 5");
        assert_eq!(block, vec!["[2] update: no-op".to_string()]);
        // Parse errors respond in-band and do not consume an item slot.
        let block = request(&mut reader, &mut writer, "bogus line");
        assert!(block[0].starts_with("error: invalid input: workload line 3:"), "{block:?}");
        let block = request(&mut reader, &mut writer, "remove 0 5");
        assert_eq!(block, vec!["[3] update: applied".to_string()]);
        // CRLF framing parses (the network client case behind the
        // workload parser's `\r` handling).
        let block = request(&mut reader, &mut writer, "insert 0 5\r");
        assert_eq!(block, vec!["[4] update: applied".to_string()]);
        handle.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn stats_drain_resume_and_shutdown_controls() {
        let opts =
            ServeOptions { threads: 1, max_inflight: 4, ..ServeOptions::default() };
        let (handle, mut reader, mut writer) = boot(opts, None);
        let answered = request(&mut reader, &mut writer, PAPER_QUERY);
        assert!(answered[0].starts_with("[1] ktg:"), "{answered:?}");
        // Drain: queries shed with the batch's overloaded line; updates
        // still apply (dropping them would fork the graph state).
        let block = request(&mut reader, &mut writer, "/drain");
        assert!(block[0].starts_with("draining"), "{block:?}");
        let shed = request(&mut reader, &mut writer, PAPER_QUERY);
        assert_eq!(shed, vec!["[2] overloaded: shed by --max-inflight 4".to_string()]);
        let upd = request(&mut reader, &mut writer, "insert 0 5");
        assert_eq!(upd, vec!["[3] update: applied".to_string()]);
        let block = request(&mut reader, &mut writer, "/resume");
        assert!(block[0].starts_with("resumed"), "{block:?}");
        let answered = request(&mut reader, &mut writer, PAPER_QUERY);
        assert!(answered[0].starts_with("[4] ktg:"), "{answered:?}");
        // Stats: one `stats: {json}` line with every advertised field.
        let block = request(&mut reader, &mut writer, "/stats");
        assert_eq!(block.len(), 1);
        let line = &block[0];
        for field in [
            "\"requests\":", "\"degraded\":", "\"overloaded\":1", "\"failed\":",
            "\"result_hits\":", "\"result_misses\":", "\"result_reclaimed\":",
            "\"subset_hits\":", "\"compactions\":", "\"row_hits\":",
            "\"row_misses\":", "\"row_evictions\":", "\"epoch\":1", "\"inflight\":0",
            "\"latency_samples\":", "\"p50_ns\":", "\"p95_ns\":", "\"p99_ns\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
        // Unknown control lines are in-band errors, not disconnects.
        let block = request(&mut reader, &mut writer, "/nope");
        assert!(block[0].starts_with("error: unknown control"), "{block:?}");
        // Shutdown acknowledges, then the server exits.
        let block = request(&mut reader, &mut writer, "/shutdown");
        assert_eq!(block, vec!["shutting down".to_string()]);
        handle.join().unwrap();
    }

    #[test]
    fn connection_deadline_closes_with_an_error_line() {
        let opts = ServeOptions { threads: 1, ..ServeOptions::default() };
        // Deadline 0: expired before the first request completes the
        // poll — deterministic without sleeping.
        let (handle, mut reader, mut writer) = boot(opts, Some(0));
        write_line(&mut writer, PAPER_QUERY).unwrap();
        writer.flush().unwrap();
        // The handler may serve the first request before its next
        // deadline poll, but must emit the deadline error and close
        // within a frame or two.
        let mut saw_deadline = false;
        loop {
            match reader.read_frame() {
                Ok(Frame::Line(line)) => {
                    if line == "error: connection deadline exceeded" {
                        saw_deadline = true;
                    }
                }
                Ok(Frame::Eof) => break,
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => break,
            }
        }
        assert!(saw_deadline, "deadline expiry must be reported in-band");
        handle.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_connections_share_the_session_cache() {
        let opts = ServeOptions { threads: 1, ..ServeOptions::default() };
        let (handle, mut reader, mut writer) = boot(opts, None);
        let first = request(&mut reader, &mut writer, PAPER_QUERY);
        assert!(!first[0].contains("[cached]"));
        // A *second* connection hits the entry the first one warmed.
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut w2 = stream.try_clone().unwrap();
        let mut r2 = LineReader::new(stream, READER_CAP * 16);
        let second = request(&mut r2, &mut w2, PAPER_QUERY);
        assert!(second[0].contains("[cached]"), "{second:?}");
        handle.shutdown();
        handle.join().unwrap();
    }
}

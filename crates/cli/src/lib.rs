//! # `ktg-cli`
//!
//! The `ktg` command-line tool: generate datasets, inspect graphs, build
//! and persist indexes, and run KTG/DKTG queries from a shell.
//!
//! ```text
//! ktg generate --profile gowalla --scale 100 --seed 42 --out data/
//! ktg stats    --edges data/edges.txt
//! ktg index    --edges data/edges.txt --out data/nlrnl.idx
//! ktg query    --edges data/edges.txt --keywords data/keywords.txt \
//!              --terms t1,t5,t9 -p 3 -k 2 -n 5 --explain
//! ktg dktg     --edges data/edges.txt --keywords data/keywords.txt \
//!              --terms t1,t5,t9 -p 3 -k 2 -n 5 --gamma 0.5
//! ktg batch    --workload queries.txt --edges data/edges.txt \
//!              --keywords data/keywords.txt --threads 4 --cache-entries 4096
//! ktg serve    --edges data/edges.txt --keywords data/keywords.txt \
//!              --bind 127.0.0.1:7433 --workers 4 --max-inflight 64
//! ktg serve    --connect 127.0.0.1:7433 --workload queries.txt
//! ```
//!
//! Every command is a library function writing to a caller-supplied
//! writer, so the test suite drives them without spawning processes; the
//! binary (`src/bin/ktg.rs`) is a thin argument-parsing shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod serve;

pub use args::{Command, ParsedArgs};

/// How the dispatched command finished (its answers' completion status).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Every answer produced was exact.
    Complete,
    /// At least one answer was degraded (deadline/budget best-so-far)
    /// or failed, and none were shed. The binary maps this to exit
    /// code 3 so scripts can tell "valid but partial" from success (0)
    /// and error (2).
    Degraded,
    /// At least one query was shed unsolved by the `--max-inflight`
    /// admission bound. The binary maps this to exit code 4 — distinct
    /// from 3 because shedding is a capacity decision, not an answer
    /// quality one, and a retry against an idle server would succeed.
    /// Shedding takes precedence over degradation when both occur.
    Overloaded,
}

/// Entry point shared by the binary and the tests: parse, dispatch, write
/// human-readable output to `out`.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> ktg_common::Result<RunStatus> {
    // Validate `KTG_FAULTS` loudly up front. The library-side env init
    // deliberately ignores a malformed spec (library code must not abort
    // its host); the CLI is the place to refuse one.
    if let Ok(spec) = std::env::var("KTG_FAULTS") {
        let spec = spec.trim();
        if !spec.is_empty() {
            ktg_common::FaultConfig::from_spec(spec)?;
        }
    }
    let parsed = args::parse(argv)?;
    commands::dispatch(&parsed, out)
}

//! # `ktg-cli`
//!
//! The `ktg` command-line tool: generate datasets, inspect graphs, build
//! and persist indexes, and run KTG/DKTG queries from a shell.
//!
//! ```text
//! ktg generate --profile gowalla --scale 100 --seed 42 --out data/
//! ktg stats    --edges data/edges.txt
//! ktg index    --edges data/edges.txt --out data/nlrnl.idx
//! ktg query    --edges data/edges.txt --keywords data/keywords.txt \
//!              --terms t1,t5,t9 -p 3 -k 2 -n 5 --explain
//! ktg dktg     --edges data/edges.txt --keywords data/keywords.txt \
//!              --terms t1,t5,t9 -p 3 -k 2 -n 5 --gamma 0.5
//! ktg batch    --workload queries.txt --edges data/edges.txt \
//!              --keywords data/keywords.txt --threads 4 --cache-entries 4096
//! ```
//!
//! Every command is a library function writing to a caller-supplied
//! writer, so the test suite drives them without spawning processes; the
//! binary (`src/bin/ktg.rs`) is a thin argument-parsing shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Command, ParsedArgs};

/// Entry point shared by the binary and the tests: parse, dispatch, write
/// human-readable output to `out`.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> ktg_common::Result<()> {
    let parsed = args::parse(argv)?;
    commands::dispatch(&parsed, out)
}

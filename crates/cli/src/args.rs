//! Argument parsing.
//!
//! Hand-rolled (the workspace's dependency budget has no `clap`): a
//! subcommand word followed by `--flag value` pairs, with short aliases
//! for the query parameters (`-p`, `-k`, `-n`).

use ktg_common::{FxHashMap, KtgError, Result};

/// The CLI subcommands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// Generate a synthetic dataset from a named profile.
    Generate,
    /// Print graph/keyword statistics.
    Stats,
    /// Build and persist an NLRNL index.
    Index,
    /// Run a KTG query.
    Query,
    /// Run a DKTG (diversified) query.
    Dktg,
    /// Replay a workload file through the batched serving engine.
    Batch,
    /// Run the persistent TCP serving front-end (or its client mode).
    Serve,
}

impl Command {
    fn from_word(word: &str) -> Result<Self> {
        match word {
            "generate" => Ok(Command::Generate),
            "stats" => Ok(Command::Stats),
            "index" => Ok(Command::Index),
            "query" => Ok(Command::Query),
            "dktg" => Ok(Command::Dktg),
            "batch" => Ok(Command::Batch),
            "serve" => Ok(Command::Serve),
            other => Err(KtgError::input(format!(
                "unknown command '{other}' (expected generate|stats|index|query|dktg|batch|serve)"
            ))),
        }
    }
}

/// A parsed command line: the subcommand plus its flag map.
#[derive(Clone, Debug)]
pub struct ParsedArgs {
    /// The subcommand.
    pub command: Command,
    flags: FxHashMap<String, String>,
}

/// Canonical spelling for a flag, resolving short aliases.
fn canonical(flag: &str) -> &str {
    match flag {
        "-p" => "p",
        "-k" => "k",
        "-n" => "n",
        other => other.trim_start_matches("--"),
    }
}

/// Flags that stand alone (no value token follows them).
const BOOLEAN_FLAGS: &[&str] = &["no-cache", "no-subset-reuse", "stats", "shutdown"];

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<ParsedArgs> {
    let mut iter = argv.iter();
    let word = iter.next().ok_or_else(|| {
        KtgError::input("missing command (generate|stats|index|query|dktg|batch|serve)")
    })?;
    let command = Command::from_word(word)?;
    let mut flags = FxHashMap::default();
    while let Some(flag) = iter.next() {
        if !flag.starts_with('-') {
            return Err(KtgError::input(format!("unexpected positional argument '{flag}'")));
        }
        let name = canonical(flag);
        if BOOLEAN_FLAGS.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| KtgError::input(format!("flag '{flag}' needs a value")))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(ParsedArgs { command, flags })
}

impl ParsedArgs {
    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| KtgError::input(format!("missing required flag --{name}")))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required numeric flag.
    pub fn required_num<T: std::str::FromStr>(&self, name: &str) -> Result<T> {
        self.required(name)?.parse::<T>().map_err(|_| {
            KtgError::input(format!("flag --{name} has a non-numeric value"))
        })
    }

    /// An optional numeric flag with a default.
    pub fn num_or<T: std::str::FromStr + Copy>(&self, name: &str, default: T) -> Result<T> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse::<T>().map_err(|_| {
                KtgError::input(format!("flag --{name} has a non-numeric value"))
            }),
        }
    }

    /// A comma-separated list flag.
    pub fn list(&self, name: &str) -> Result<Vec<String>> {
        Ok(self
            .required(name)?
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let p = parse(&argv(&["query", "--edges", "e.txt", "-p", "3", "-k", "2"])).unwrap();
        assert_eq!(p.command, Command::Query);
        assert_eq!(p.required("edges").unwrap(), "e.txt");
        assert_eq!(p.required_num::<usize>("p").unwrap(), 3);
        assert_eq!(p.required_num::<u32>("k").unwrap(), 2);
    }

    #[test]
    fn defaults_and_optionals() {
        let p = parse(&argv(&["stats", "--edges", "e.txt"])).unwrap();
        assert_eq!(p.num_or("seed", 7u64).unwrap(), 7);
        assert!(p.optional("keywords").is_none());
    }

    #[test]
    fn unknown_command_rejected() {
        assert!(parse(&argv(&["frobnicate"])).is_err());
        assert!(parse(&argv(&[])).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&argv(&["stats", "--edges"])).is_err());
    }

    #[test]
    fn positional_rejected() {
        assert!(parse(&argv(&["stats", "whoops"])).is_err());
    }

    #[test]
    fn list_flag_splits_and_trims() {
        let p = parse(&argv(&["query", "--terms", "a, b,,c"])).unwrap();
        assert_eq!(p.list("terms").unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn boolean_flags_stand_alone() {
        let p = parse(&argv(&["batch", "--no-cache", "--workload", "w.txt"])).unwrap();
        assert_eq!(p.command, Command::Batch);
        assert_eq!(p.optional("no-cache"), Some("true"));
        assert_eq!(p.required("workload").unwrap(), "w.txt");
    }

    #[test]
    fn bad_number_reported() {
        let p = parse(&argv(&["query", "-p", "three"])).unwrap();
        assert!(p.required_num::<usize>("p").is_err());
    }
}

//! The `ktg` binary: a thin shim over [`ktg_cli::run`].
//!
//! Exit codes: `0` — success, every answer exact; `3` — the command ran
//! but at least one answer was degraded (deadline/budget best-so-far)
//! or failed; `4` — at least one query was shed unsolved by the
//! `--max-inflight` admission bound (shedding wins over degradation so
//! load problems are never misread as answer-quality problems); `2` —
//! usage or runtime error.

fn main() {
    // Under fault injection every injected panic is caught and retried
    // by design; without this filter each one would still dump a
    // backtrace to stderr through the default hook and drown real
    // output. Genuine panics keep the full default report.
    if std::env::var_os("KTG_FAULTS").is_some() {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ktg_common::InjectedFault>().is_none() {
                default_hook(info);
            }
        }));
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    match ktg_cli::run(&argv, &mut lock) {
        Ok(ktg_cli::RunStatus::Complete) => {}
        Ok(ktg_cli::RunStatus::Degraded) => std::process::exit(3),
        Ok(ktg_cli::RunStatus::Overloaded) => std::process::exit(4),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("usage: ktg <generate|stats|index|query|dktg|batch|serve> [--flag value]...");
            eprintln!("  generate --profile NAME --out DIR [--scale N] [--seed N]");
            eprintln!("  stats    --edges FILE [--keywords FILE]");
            eprintln!("  index    --edges FILE --out FILE");
            eprintln!("  query    --edges FILE [--keywords FILE] (--terms a,b,c | --random-terms N)");
            eprintln!("           [-p N] [-k N] [-n N] [--algo qkc|vkc|vkc-deg]");
            eprintln!("           [--oracle bfs|nl|nlrnl] [--index FILE] [--authors 1,2]");
            eprintln!("           [--explain true] [--deadline-ms N] [--node-budget N]");
            eprintln!("  dktg     (query flags) [--gamma F]");
            eprintln!("  batch    --workload FILE --edges FILE [--keywords FILE] [--threads N]");
            eprintln!("           [--cache-entries N] [--no-cache] [--algo NAME]");
            eprintln!("           [--bitmap-threshold N] [--deadline-ms N] [--node-budget N]");
            eprintln!("           [--max-inflight N]");
            eprintln!("  serve    --edges FILE [--keywords FILE] [--bind ADDR] [--workers N]");
            eprintln!("           [--conn-deadline-ms N] (plus the batch engine/cache flags)");
            eprintln!("  serve    --connect ADDR [--workload FILE] [--stats] [--shutdown]");
            eprintln!("env: KTG_THREADS=N  KTG_VERIFY=1  KTG_FAULTS=<sites>:<rate>:<seed>");
            eprintln!("exit codes: 0 ok; 3 degraded/partial answers; 4 overloaded/shed; 2 error");
            std::process::exit(2);
        }
    }
}

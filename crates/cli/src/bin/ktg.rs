//! The `ktg` binary: a thin shim over [`ktg_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if let Err(e) = ktg_cli::run(&argv, &mut lock) {
        eprintln!("error: {e}");
        eprintln!();
        eprintln!("usage: ktg <generate|stats|index|query|dktg|batch> [--flag value]...");
        eprintln!("  generate --profile NAME --out DIR [--scale N] [--seed N]");
        eprintln!("  stats    --edges FILE [--keywords FILE]");
        eprintln!("  index    --edges FILE --out FILE");
        eprintln!("  query    --edges FILE [--keywords FILE] (--terms a,b,c | --random-terms N)");
        eprintln!("           [-p N] [-k N] [-n N] [--algo qkc|vkc|vkc-deg]");
        eprintln!("           [--oracle bfs|nl|nlrnl] [--index FILE] [--authors 1,2]");
        eprintln!("           [--explain true]");
        eprintln!("  dktg     (query flags) [--gamma F]");
        eprintln!("  batch    --workload FILE --edges FILE [--keywords FILE] [--threads N]");
        eprintln!("           [--cache-entries N] [--no-cache] [--algo NAME]");
        eprintln!("           [--bitmap-threshold N]");
        std::process::exit(2);
    }
}

//! Figure 8 — the case study.
//!
//! Runs the paper's qualitative comparison on a DBLP-profile dataset:
//! the same `N = 3, p = 3, k = 2` query through **KTG-VKC-DEG**,
//! **DKTG-Greedy** (γ = 0.5) and the **TAGQ** comparator, printing each
//! result group with the pairwise hop counts between members and every
//! member's covered query keywords. The paper's headline observation —
//! TAGQ (which maximizes *average* coverage) admits members that cover no
//! query keyword at all, while KTG never does — is visible directly in
//! the output.
//!
//! ```text
//! case_study [--scale N] [--seed N]
//! ```

use ktg_core::dktg::{self, DktgQuery};
use ktg_core::tagq::{self, TagqOptions};
use ktg_core::{bb, AttributedGraph, Group, KtgQuery};
use ktg_datasets::{DatasetProfile, QueryGen};
use ktg_graph::{bfs, BfsScratch};
use ktg_index::NlrnlIndex;
use ktg_keywords::QueryKeywords;

fn main() {
    let mut scale = 100usize;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().and_then(|s| s.parse().ok()).unwrap_or(scale),
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).unwrap_or(seed),
            _ => {
                eprintln!("usage: case_study [--scale N] [--seed N]");
                std::process::exit(2);
            }
        }
    }

    let net = DatasetProfile::Dblp.instantiate(scale, seed);
    println!("# Figure 8 case study — dblp at scale 1/{scale}, seed {seed}");
    println!("graph: {}\n", ktg_graph::stats::summary(net.graph()));

    // The paper's query: 5 keywords, N = 3, p = 3, k = 2.
    let keywords = QueryGen::new(&net, seed ^ 0xF1C8).query(5).expect("bench workload");
    let terms: Vec<&str> =
        keywords.ids().iter().map(|&k| net.vocab().term(k)).collect();
    println!("query keywords: {}   (N=3, p=3, k=2, gamma=0.5)\n", terms.join(", "));

    let query = KtgQuery::new(keywords.clone(), 3, 2, 3).expect("valid");
    let index = NlrnlIndex::build(net.graph());

    // --- KTG-VKC-DEG ---
    let ktg = bb::solve(&net, &query, &index, &bb::BbOptions::vkc_deg());
    println!("## KTG-VKC-DEG");
    for g in &ktg.groups {
        print_group(&net, &keywords, g);
    }

    // --- DKTG-Greedy ---
    let dq = DktgQuery::new(query.clone(), 0.5).expect("valid gamma");
    let dk = dktg::solve(&net, &dq, &index);
    println!("## DKTG-Greedy (dL = {:.2}, score = {:.2})", dk.diversity, dk.score);
    for g in &dk.groups {
        print_group(&net, &keywords, g);
    }

    // --- TAGQ comparator ---
    let tq = tagq::solve(&net, &query, &index, &TagqOptions::default());
    println!("## TAGQ (average-coverage objective)");
    for tg in &tq.groups {
        print_group(&net, &keywords, &tg.group);
        println!("    avg QKC = {:.2}", tg.avg_qkc(keywords.len()));
    }
    let zero_members = tq
        .groups
        .iter()
        .flat_map(|tg| tg.group.members())
        .filter(|&&v| net.compile(&keywords).mask(v) == 0)
        .count();
    println!(
        "\nTAGQ members covering NO query keyword: {zero_members} \
         (KTG groups by construction contain none)"
    );
}

/// Prints one group: members with their covered query keywords and the
/// pairwise hop matrix.
fn print_group(net: &AttributedGraph, keywords: &QueryKeywords, g: &Group) {
    let masks = net.compile(keywords);
    let member_desc: Vec<String> = g
        .members()
        .iter()
        .map(|&v| {
            let mask = masks.mask(v);
            let covered: Vec<&str> = keywords
                .ids()
                .iter()
                .enumerate()
                .filter(|(bit, _)| mask >> bit & 1 == 1)
                .map(|(_, &k)| net.vocab().term(k))
                .collect();
            format!("u{}[{}]", v.0, covered.join(","))
        })
        .collect();
    println!(
        "  group {{{}}}  QKC = {}/{}",
        member_desc.join(" "),
        g.coverage_count(),
        keywords.len()
    );
    // Pairwise hops.
    let mut scratch = BfsScratch::new(net.num_vertices());
    for (i, &u) in g.members().iter().enumerate() {
        for &v in &g.members()[i + 1..] {
            let d = bfs::distance_bounded(net.graph(), u, v, 64, &mut scratch)
                .map(|d| d.to_string())
                .unwrap_or_else(|| "inf".to_string());
            println!("    hops(u{}, u{}) = {}", u.0, v.0, d);
        }
    }
}

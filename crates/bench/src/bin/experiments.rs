//! Regenerates every table and figure of the paper's evaluation (§VII).
//!
//! ```text
//! experiments [fig3|fig4|fig5|fig6|fig7a|fig7b|fig9|all|table1]
//!             [--scale N] [--queries N] [--seed N] [--budget N] [--out DIR]
//! ```
//!
//! * `--scale` — dataset scale divisor (default 100; 1 = paper size, which
//!   requires a very large-memory machine for the index experiments).
//! * `--queries` — queries per configuration (paper: 100; default 5).
//! * `--budget` — branch-and-bound node budget per query (safety valve;
//!   default 500,000; truncated runs are flagged with `*`).
//!
//! Each figure prints a markdown table (mean latency per algorithm per
//! swept value — the series the paper plots) and writes
//! `bench_results/<fig>.csv`.

use ktg_bench::params::{self, Params, DEFAULTS, K_RANGE, N_RANGE, P_RANGE, WQ_RANGE};
use ktg_bench::report::{fmt_bytes, fmt_duration, Table};
use ktg_bench::runner::{dataset_with_queries, Algo, Workbench};
use ktg_datasets::DatasetProfile;
use std::time::Instant;

struct Cli {
    command: String,
    scale: usize,
    queries: usize,
    seed: u64,
    budget: Option<u64>,
    out: String,
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let mut cli = Cli {
        command: "all".to_string(),
        scale: params::scale_from_env(100),
        queries: params::queries_from_env(5),
        seed: 42,
        budget: Some(500_000),
        out: "bench_results".to_string(),
    };
    let mut positional_seen = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => cli.scale = expect_num(&mut args, "--scale") as usize,
            "--queries" => cli.queries = expect_num(&mut args, "--queries") as usize,
            "--seed" => cli.seed = expect_num(&mut args, "--seed"),
            "--budget" => {
                let b = expect_num(&mut args, "--budget");
                cli.budget = if b == 0 { None } else { Some(b) };
            }
            "--out" => cli.out = args.next().unwrap_or_else(|| usage("--out needs a value")),
            "--help" | "-h" => usage(""),
            other if !other.starts_with('-') && !positional_seen => {
                cli.command = other.to_string();
                positional_seen = true;
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    cli
}

fn expect_num(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    args.next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a numeric value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "usage: experiments [fig3|fig4|fig5|fig6|fig7a|fig7b|fig9|table1|all] \
         [--scale N] [--queries N] [--seed N] [--budget N] [--out DIR]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

fn main() {
    let cli = parse_cli();
    println!(
        "# KTG experiments — command={} scale=1/{} queries={} seed={}\n",
        cli.command, cli.scale, cli.queries, cli.seed
    );
    let start = Instant::now();
    match cli.command.as_str() {
        "table1" => table1(),
        "fig3" => fig_sweep(&cli, "fig3", "p", &Algo::FIG3),
        "fig4" => fig_sweep(&cli, "fig4", "k", &Algo::FIG456),
        "fig5" => fig_sweep(&cli, "fig5", "wq", &Algo::FIG456),
        "fig6" => fig_sweep(&cli, "fig6", "n", &Algo::FIG456),
        "fig7a" => fig7a(&cli),
        "fig7b" => fig7b(&cli),
        "fig9" => fig9(&cli),
        "all" => {
            table1();
            fig_sweep(&cli, "fig3", "p", &Algo::FIG3);
            fig_sweep(&cli, "fig4", "k", &Algo::FIG456);
            fig_sweep(&cli, "fig5", "wq", &Algo::FIG456);
            fig_sweep(&cli, "fig6", "n", &Algo::FIG456);
            fig7a(&cli);
            fig7b(&cli);
            fig9(&cli);
        }
        other => usage(&format!("unknown command '{other}'")),
    }
    println!("\ntotal wall time: {:.1}s", start.elapsed().as_secs_f64());
}

/// Prints Table I (parameter grid + adopted defaults).
fn table1() {
    println!("### Table I — parameter ranges (defaults in bold)\n");
    println!("| Parameter | Range |");
    println!("|---|---|");
    let fmt = |vals: &[String], def: &str| -> String {
        vals.iter()
            .map(|v| if v == def { format!("**{v}**") } else { v.clone() })
            .collect::<Vec<_>>()
            .join(", ")
    };
    let p: Vec<String> = P_RANGE.iter().map(|v| v.to_string()).collect();
    let k: Vec<String> = K_RANGE.iter().map(|v| v.to_string()).collect();
    let w: Vec<String> = WQ_RANGE.iter().map(|v| v.to_string()).collect();
    let n: Vec<String> = N_RANGE.iter().map(|v| v.to_string()).collect();
    println!("| group size (p) | {} |", fmt(&p, &DEFAULTS.p.to_string()));
    println!("| social constraint (k) | {} |", fmt(&k, &DEFAULTS.k.to_string()));
    println!("| query keyword size (W_Q) | {} |", fmt(&w, &DEFAULTS.wq.to_string()));
    println!("| N value | {} |", fmt(&n, &DEFAULTS.n.to_string()));
    println!();
}

/// The swept values for a named parameter.
fn sweep_values(param: &str) -> Vec<Params> {
    match param {
        "p" => P_RANGE.iter().map(|&p| DEFAULTS.with_p(p)).collect(),
        "k" => K_RANGE.iter().map(|&k| DEFAULTS.with_k(k)).collect(),
        "wq" => WQ_RANGE.iter().map(|&w| DEFAULTS.with_wq(w)).collect(),
        "n" => N_RANGE.iter().map(|&n| DEFAULTS.with_n(n)).collect(),
        other => panic!("unknown sweep parameter {other}"),
    }
}

fn param_label(param: &str, p: &Params) -> String {
    match param {
        "p" => p.p.to_string(),
        "k" => p.k.to_string(),
        "wq" => p.wq.to_string(),
        "n" => p.n.to_string(),
        other => panic!("unknown sweep parameter {other}"),
    }
}

/// Figures 3–6: latency vs one parameter on the four primary datasets.
fn fig_sweep(cli: &Cli, fig: &str, param: &str, algos: &[Algo]) {
    for profile in DatasetProfile::PRIMARY {
        let configs = sweep_values(param);
        let net = profile.instantiate(cli.scale, cli.seed);
        let bench = Workbench::new(&net);
        let mut table = Table::new(
            format!("{fig} — latency vs {param} on {profile} (scale 1/{})", cli.scale),
            param,
        );
        table.columns(configs.iter().map(|p| param_label(param, p)));
        for &algo in algos {
            let mut cells = Vec::with_capacity(configs.len());
            for cfg in &configs {
                // The batch depends on |W_Q|; regenerate per config with a
                // fixed seed so every algorithm sees identical queries.
                let batch = ktg_datasets::QueryGen::new(&net, cli.seed ^ 0xBEEF)
                    .batch(cli.queries, cfg.wq)
                    .expect("bench workload");
                let m = bench.run_batch(algo, &batch, cfg, cli.budget).expect("bench query");
                let mut cell = fmt_duration(m.mean_latency);
                if m.stats.truncated {
                    cell.push('*');
                }
                cells.push(cell);
            }
            table.row(algo.name(), cells);
        }
        print!("{}", table.to_markdown());
        println!();
        if let Ok(path) = table.write_csv(&cli.out, &format!("{fig}_{profile}")) {
            println!("wrote {}", path.display());
        }
        println!();
    }
}

/// Figure 7a: the denser Twitter graph, latency vs p.
fn fig7a(cli: &Cli) {
    let net = DatasetProfile::Twitter.instantiate(cli.scale, cli.seed);
    let bench = Workbench::new(&net);
    let mut table = Table::new(
        format!("fig7a — denser graph (twitter, scale 1/{}) — latency vs p", cli.scale),
        "p",
    );
    table.columns(P_RANGE.iter().map(|p| p.to_string()));
    for algo in [Algo::KtgVkcNlrnl, Algo::KtgVkcDegNlrnl] {
        let mut cells = Vec::new();
        for &p in &P_RANGE {
            let cfg = DEFAULTS.with_p(p);
            let batch =
                ktg_datasets::QueryGen::new(&net, cli.seed ^ 0xBEEF)
                .batch(cli.queries, cfg.wq)
                .expect("bench workload");
            let m = bench.run_batch(algo, &batch, &cfg, cli.budget).expect("bench query");
            let mut cell = fmt_duration(m.mean_latency);
            if m.stats.truncated {
                cell.push('*');
            }
            cells.push(cell);
        }
        table.row(algo.name(), cells);
    }
    print!("{}", table.to_markdown());
    if let Ok(path) = table.write_csv(&cli.out, "fig7a_twitter") {
        println!("wrote {}", path.display());
    }
    println!();
}

/// Figure 7b: the large DBLP-1M graph, NL vs NLRNL scalability vs k.
fn fig7b(cli: &Cli) {
    let (net, _) =
        dataset_with_queries(DatasetProfile::DblpLarge, cli.scale, cli.seed, 1, DEFAULTS.wq)
            .expect("bench workload");
    let bench = Workbench::new(&net);
    let mut table = Table::new(
        format!("fig7b — large graph (dblp-1m, scale 1/{}) — latency vs k", cli.scale),
        "k",
    );
    table.columns(K_RANGE.iter().map(|k| k.to_string()));
    for algo in [Algo::KtgVkcNl, Algo::KtgVkcDegNlrnl] {
        let mut cells = Vec::new();
        for &k in &K_RANGE {
            let cfg = DEFAULTS.with_k(k);
            let batch =
                ktg_datasets::QueryGen::new(&net, cli.seed ^ 0xBEEF)
                .batch(cli.queries, cfg.wq)
                .expect("bench workload");
            let m = bench.run_batch(algo, &batch, &cfg, cli.budget).expect("bench query");
            let mut cell = fmt_duration(m.mean_latency);
            if m.stats.truncated {
                cell.push('*');
            }
            cells.push(cell);
        }
        table.row(algo.name(), cells);
    }
    print!("{}", table.to_markdown());
    if let Ok(path) = table.write_csv(&cli.out, "fig7b_dblp1m") {
        println!("wrote {}", path.display());
    }
    println!();
}

/// Figure 9: index space (a) and construction time (b) on the four
/// primary datasets.
fn fig9(cli: &Cli) {
    let mut space = Table::new(format!("fig9a — index space (scale 1/{})", cli.scale), "index");
    let mut build = Table::new(
        format!("fig9b — index construction time (scale 1/{})", cli.scale),
        "index",
    );
    let names: Vec<String> = DatasetProfile::PRIMARY.iter().map(|p| p.to_string()).collect();
    space.columns(names.clone());
    build.columns(names);

    let mut nl_space = Vec::new();
    let mut nlrnl_space = Vec::new();
    let mut nl_build = Vec::new();
    let mut nlrnl_build = Vec::new();
    for profile in DatasetProfile::PRIMARY {
        let net = profile.instantiate(cli.scale, cli.seed);
        let bench = Workbench::new(&net);
        nl_space.push(fmt_bytes(bench.nl().space().total_bytes()));
        nlrnl_space.push(fmt_bytes(bench.nlrnl().space().total_bytes()));
        nl_build.push(fmt_duration(bench.nl().build_stats().elapsed));
        nlrnl_build.push(fmt_duration(bench.nlrnl().build_stats().elapsed));
    }
    space.row("NL", nl_space);
    space.row("NLRNL", nlrnl_space);
    build.row("NL", nl_build);
    build.row("NLRNL", nlrnl_build);

    print!("{}", space.to_markdown());
    println!();
    print!("{}", build.to_markdown());
    if let Ok(p) = space.write_csv(&cli.out, "fig9a_space") {
        println!("wrote {}", p.display());
    }
    if let Ok(p) = build.write_csv(&cli.out, "fig9b_build") {
        println!("wrote {}", p.display());
    }
    println!();
}

//! Scaling bench for the parallel conflict-bitmap branch-and-bound.
//!
//! Sweeps worker count ∈ {1, 2, 4, 8} × conflict kernel {bitmap, oracle}
//! over a seeded planted-partition (SBM) graph with Zipf keywords, and
//! emits one JSON line per configuration into
//! `bench_results/bb_scaling.jsonl` (override the directory with
//! `KTG_BENCH_OUT`). Thread counts are set directly on [`bb::BbOptions`]
//! so every record is self-describing — the sweep does not depend on the
//! `KTG_THREADS` environment of the invoking shell.
//!
//! Unlike the figure benches, the JSON sink stays on in quick mode
//! (`--test` / `KTG_BENCH_FAST=1`): CI's smoke run is exactly what seeds
//! the perf trajectory, so a smoke run that writes nothing would be
//! useless. Quick mode only drops the sample count to one and shrinks the
//! instance.
//!
//! Besides timing, each record carries the run's [`SearchStats`], and the
//! binary asserts the two properties the harness relies on:
//!
//! * every configuration returns byte-identical groups (determinism);
//! * at one thread, the bitmap kernel issues fewer `distance_checks`
//!   than the oracle path on the same queries (the kernel replaces
//!   per-pair probes with precomputed bitsets).

use ktg_core::{bb, AttributedGraph, KtgQuery, SearchStats};
use ktg_datasets::keywords::{assign_zipf, KeywordModel};
use ktg_datasets::sbm::{planted_partition, SbmParams};
use ktg_datasets::QueryGen;
use ktg_index::{DistanceOracle, NlrnlIndex, PllIndex};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SEED: u64 = 0xB0B5_CA1E;
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One (threads, kernel) configuration's aggregate over the query batch.
struct Record {
    kernel: &'static str,
    threads: usize,
    samples: usize,
    queries: usize,
    solved: usize,
    mean: Duration,
    min: Duration,
    stats: SearchStats,
}

impl Record {
    fn to_json_line(&self) -> String {
        format!(
            "{{\"group\":\"bb_scaling\",\"bench\":\"{}\",\"param\":\"{}\",\"samples\":{},\
             \"queries\":{},\"solved\":{},\"mean_ns\":{},\"min_ns\":{},\"nodes\":{},\
             \"distance_checks\":{},\"kline_filtered\":{},\"keyword_pruned\":{},\
             \"groups_evaluated\":{},\"truncated\":{}}}",
            self.kernel,
            self.threads,
            self.samples,
            self.queries,
            self.solved,
            self.mean.as_nanos(),
            self.min.as_nanos(),
            self.stats.nodes,
            self.stats.distance_checks,
            self.stats.kline_filtered,
            self.stats.keyword_pruned,
            self.stats.groups_evaluated,
            self.stats.truncated,
        )
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test")
        || std::env::var("KTG_BENCH_FAST").is_ok_and(|v| v != "0");
    let (n, queries, samples) = if quick { (500, 2, 1) } else { (1500, 5, 5) };

    let params = SbmParams::modular(n, 8);
    let graph = planted_partition(&params, SEED);
    let (vocab, vk) = assign_zipf(n, &KeywordModel::default(), SEED ^ 0x515F);
    let net = AttributedGraph::new(graph, vocab, vk);
    let build_start = Instant::now();
    let nlrnl = NlrnlIndex::build(net.graph());
    let nlrnl_build = build_start.elapsed();
    let build_start = Instant::now();
    let pll = PllIndex::build_parallel(net.graph());
    let pll_build = build_start.elapsed();
    let batch = QueryGen::new(&net, SEED ^ 0xBEEF).batch(queries, 6).expect("bench workload");

    let mut baseline: Option<Vec<Vec<ktg_core::Group>>> = None;
    let mut seq_checks: Vec<(&'static str, u64)> = Vec::new();
    let mut records = Vec::new();

    // The PLL series runs the oracle-probing kernel (threshold 0): that
    // is the mode where per-pair distance queries dominate, i.e. where a
    // 2-hop labeling can actually out-probe NLRNL. Its groups feed the
    // same determinism gate as every other configuration.
    let series: [(&'static str, usize, &dyn DistanceOracle); 3] = [
        ("bitmap", bb::DEFAULT_BITMAP_THRESHOLD, &nlrnl),
        ("oracle", 0, &nlrnl),
        ("pll", 0, &pll),
    ];
    for (kernel, bitmap_threshold, oracle) in series {
        for threads in THREAD_SWEEP {
            let opts = bb::BbOptions::vkc_deg()
                .with_threads(threads)
                .with_bitmap_threshold(bitmap_threshold);
            let mut times = Vec::with_capacity(samples);
            let mut stats = SearchStats::default();
            let mut solved = 0usize;
            let mut groups: Vec<Vec<ktg_core::Group>> = Vec::new();
            for sample in 0..samples {
                stats = SearchStats::default();
                solved = 0;
                groups.clear();
                let start = Instant::now();
                for q in &batch {
                    let query = KtgQuery::new(q.clone(), 3, 2, 5).expect("valid params");
                    let out = bb::solve(&net, &query, &oracle, &opts);
                    if sample == 0 {
                        stats.merge(&out.stats);
                        solved += usize::from(!out.groups.is_empty());
                        groups.push(out.groups);
                    }
                }
                times.push(start.elapsed());
            }
            times.sort_unstable();
            let total: Duration = times.iter().sum();

            // Determinism gate: every configuration must return the exact
            // groups the first configuration (bitmap, 1 thread) returned.
            match &baseline {
                None => baseline = Some(groups),
                Some(expected) => assert_eq!(
                    expected, &groups,
                    "{kernel}/{threads} threads diverged from the baseline groups"
                ),
            }
            if threads == 1 {
                seq_checks.push((kernel, stats.distance_checks));
            }

            let record = Record {
                kernel,
                threads,
                samples,
                queries: batch.len(),
                solved,
                mean: total / samples as u32,
                min: times[0],
                stats,
            };
            println!("{}", record.to_json_line());
            records.push(record);
        }
    }

    // The kernel's point: precomputed bitsets replace per-pair oracle
    // probes, so a single-thread bitmap run must issue strictly fewer
    // distance checks than the oracle path on the same queries.
    let bitmap = seq_checks.iter().find(|(k, _)| *k == "bitmap").expect("bitmap run present").1;
    let oracle_checks =
        seq_checks.iter().find(|(k, _)| *k == "oracle").expect("oracle run present").1;
    assert!(
        bitmap < oracle_checks,
        "bitmap kernel should probe less than the oracle path ({bitmap} vs {oracle_checks})"
    );

    // Crossover vs NLRNL: how many probing-mode queries amortize PLL's
    // extra construction time? Logged, not asserted — which oracle wins
    // per query is a property of the graph's label sizes, and the point
    // of the series is to put the tradeoff on the record.
    let min_at = |kernel: &str, threads: usize| {
        records
            .iter()
            .find(|r: &&Record| r.kernel == kernel && r.threads == threads)
            .map(|r| r.min)
            .expect("swept configuration present")
    };
    let (nlrnl_q, pll_q) = (min_at("oracle", 1), min_at("pll", 1));
    let per_query_gain_ns =
        (nlrnl_q.as_nanos() as i128 - pll_q.as_nanos() as i128) / batch.len() as i128;
    let extra_build_ns = pll_build.as_nanos() as i128 - nlrnl_build.as_nanos() as i128;
    let verdict = if per_query_gain_ns <= 0 {
        "no crossover (NLRNL at least as fast per query)".to_string()
    } else if extra_build_ns <= 0 {
        "crossover immediate (PLL also builds faster)".to_string()
    } else {
        format!(
            "crossover after ~{} queries",
            (extra_build_ns as u128).div_ceil(per_query_gain_ns as u128)
        )
    };
    eprintln!(
        "bb_scaling: pll build {pll_build:?} vs nlrnl {nlrnl_build:?}, \
         per-query gain {per_query_gain_ns} ns at 1 thread — {verdict}"
    );

    let dir = PathBuf::from(std::env::var("KTG_BENCH_OUT").unwrap_or_else(|_| "bench_results".into()));
    if let Err(e) = write_records(&dir, &records) {
        eprintln!("warning: could not write {}/bb_scaling.jsonl: {e}", dir.display());
        std::process::exit(1);
    }
    eprintln!(
        "bb_scaling: wrote {} records to {}/bb_scaling.jsonl (quick={quick})",
        records.len(),
        dir.display()
    );
}

fn write_records(dir: &PathBuf, records: &[Record]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("bb_scaling.jsonl"))?;
    for record in records {
        writeln!(file, "{}", record.to_json_line())?;
    }
    Ok(())
}

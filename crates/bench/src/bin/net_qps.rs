//! End-to-end throughput bench for the TCP serving front-end.
//!
//! Where `qps` measures the batched executor in-process, `net_qps`
//! measures the whole serving stack — framing, parsing, the shared
//! session behind its `RwLock`, admission, and response rendering —
//! over real loopback sockets against an in-process `ktg serve` server.
//!
//! Sweeps connections ∈ {1, 2, 4, 8} × result cache {on, off} in the
//! closed-loop regime (each connection waits for its response before
//! sending the next request), plus one open-arrival record per cache
//! setting at 4 connections (every connection writes its whole request
//! stream up front, then drains the responses — arrivals decoupled from
//! completions, the regime admission control exists for). Each
//! configuration gets a fresh server; repeated samples measure
//! steady-state serving (warm cache when enabled), like `qps`.
//!
//! A paced open-arrival sweep follows: one connection offers requests
//! at {25, 50, 75, 100, 150}% of the measured closed-loop cache-on
//! 1-connection rate on a fixed clock (request `i` is sent at
//! `start + i·interval`, never waiting for responses) and records each
//! request's *sojourn* time — completion minus scheduled arrival — so
//! queueing delay past the saturation knee is visible even though the
//! writer never blocks. `summarize` folds the 150%-vs-75% completed
//! rate into `net_open_knee_ratio`: ≈2.0 means throughput still tracks
//! offered load at 150% (no knee below that), ≈1.0 means the server
//! was already saturated at 75%.
//!
//! Every record is one JSON line in `bench_results/net_qps.jsonl`
//! (`KTG_BENCH_OUT` overrides the directory); the sink stays on in
//! quick mode (`--test` / `KTG_BENCH_FAST=1`) because CI's smoke run
//! seeds the perf trajectory. Client-side per-request latency
//! percentiles and the server's own `/stats` line go to stderr.
//!
//! Self-asserts (exit non-zero on failure):
//!
//! * every closed-loop response stream is non-empty and block-framed
//!   (a `.` per request);
//! * at 1 connection, cache-on throughput beats cache-off on the same
//!   repeat-heavy Zipf workload — re-measured once before failing,
//!   because loopback jitter on a loaded CI box can wobble a single
//!   sample.

use ktg_bench::harness::BenchGroup;
use ktg_cli::serve::{start, ServeConfig, ServerHandle};
use ktg_common::net::{write_line, Frame, LineReader};
use ktg_core::serve::ServeOptions;
use ktg_core::{bb, AttributedGraph};
use ktg_datasets::keywords::{assign_zipf, KeywordModel};
use ktg_datasets::sbm::{planted_partition, SbmParams};
use ktg_datasets::{zipf_indices, QueryGen};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

const SEED: u64 = 0xB0B5_CA1E;
const CONN_SWEEP: [usize; 4] = [1, 2, 4, 8];
const ZIPF_EXPONENT: f64 = 1.1;

/// Builds the bench network and the wire-format workload lines: a small
/// pool of distinct mixed KTG/DKTG query lines expanded into a
/// Zipf-skewed repeat stream (hot queries repeat often — the regime the
/// result cache exploits).
fn build(quick: bool) -> (AttributedGraph, Vec<String>) {
    let (n, pool_size, workload_len) = if quick { (400, 6, 60) } else { (1200, 12, 240) };
    let params = SbmParams::modular(n, 8);
    let graph = planted_partition(&params, SEED);
    let (vocab, vk) = assign_zipf(n, &KeywordModel::default(), SEED ^ 0x515F);
    let net = AttributedGraph::new(graph, vocab, vk);

    let keyword_sets =
        QueryGen::new(&net, SEED ^ 0xBEEF).batch(pool_size, 6).expect("bench workload");
    let pool: Vec<String> = keyword_sets
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            let terms: Vec<&str> =
                q.ids().iter().map(|&id| net.vocab().term(id)).collect();
            let terms = terms.join(",");
            if i % 2 == 0 {
                format!("ktg terms={terms} p=3 k=2 n=5")
            } else {
                format!("dktg terms={terms} p=3 k=2 n=5 gamma=0.5")
            }
        })
        .collect();
    let workload = zipf_indices(pool.len(), workload_len, ZIPF_EXPONENT, SEED)
        .into_iter()
        .map(|i| pool[i].clone())
        .collect();
    (net, workload)
}

fn boot(net: &AttributedGraph, use_cache: bool) -> ServerHandle {
    let options = ServeOptions {
        threads: 1,
        use_cache,
        cache_entries: 4096,
        engine: bb::BbOptions::vkc_deg(),
        max_inflight: 0,
        ..ServeOptions::default()
    };
    let cfg = ServeConfig {
        workers: CONN_SWEEP[CONN_SWEEP.len() - 1],
        options,
        ..ServeConfig::default()
    };
    start(net.clone(), cfg).expect("bind loopback server")
}

fn connect(addr: SocketAddr) -> (TcpStream, LineReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect to bench server");
    stream.set_nodelay(true).expect("set nodelay");
    let writer = stream.try_clone().expect("clone stream");
    (writer, LineReader::new(stream, 1 << 20))
}

/// Reads one `.`-terminated response block, returning its line count
/// (excluding the terminator).
fn drain_block(reader: &mut LineReader<TcpStream>) -> usize {
    let mut lines = 0;
    loop {
        match reader.read_frame().expect("read response frame") {
            Frame::Line(l) if l == "." => return lines,
            Frame::Line(_) => lines += 1,
            other => panic!("unexpected frame mid-response: {other:?}"),
        }
    }
}

/// Closed loop: each connection round-trips its share of the workload
/// one request at a time. Returns per-request latencies (ns).
fn run_closed(addr: SocketAddr, workload: &[String], conns: usize) -> Vec<u64> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || {
                    let (mut writer, mut reader) = connect(addr);
                    let mut latencies = Vec::new();
                    for line in workload.iter().skip(c).step_by(conns) {
                        let t = Instant::now();
                        write_line(&mut writer, line).expect("send request");
                        writer.flush().expect("flush request");
                        let lines = drain_block(&mut reader);
                        latencies.push(t.elapsed().as_nanos() as u64);
                        assert!(lines > 0, "query response block was empty");
                    }
                    latencies
                })
            })
            .collect();
        let mut all = Vec::with_capacity(workload.len());
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
        all
    })
}

/// Open arrival: each connection writes its entire request stream up
/// front, then drains all the response blocks.
fn run_open(addr: SocketAddr, workload: &[String], conns: usize) {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || {
                    let (mut writer, mut reader) = connect(addr);
                    let mine: Vec<&String> =
                        workload.iter().skip(c).step_by(conns).collect();
                    for line in &mine {
                        write_line(&mut writer, line).expect("send request");
                    }
                    writer.flush().expect("flush request stream");
                    for _ in &mine {
                        drain_block(&mut reader);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    })
}

/// Paced open arrival over one connection: a writer thread sends
/// request `i` at `start + i·interval` (the offered-load clock, never
/// waiting for responses) while this thread drains response blocks and
/// records each request's sojourn time — completion minus *scheduled*
/// arrival — so queueing delay shows up once the server saturates.
/// Returns per-request sojourn times (ns).
fn run_paced(addr: SocketAddr, workload: &[String], offered_qps: f64) -> Vec<u64> {
    let interval = std::time::Duration::from_secs_f64(1.0 / offered_qps.max(1.0));
    let (mut writer, mut reader) = connect(addr);
    let start = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for (i, line) in workload.iter().enumerate() {
                let due = start + interval * i as u32;
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                write_line(&mut writer, line).expect("send request");
                writer.flush().expect("flush request");
            }
        });
        let mut sojourns = Vec::with_capacity(workload.len());
        for i in 0..workload.len() {
            let lines = drain_block(&mut reader);
            assert!(lines > 0, "query response block was empty");
            let due = start + interval * i as u32;
            sojourns.push(Instant::now().saturating_duration_since(due).as_nanos() as u64);
        }
        sojourns
    })
}

/// Nearest-rank percentile over unsorted latency samples.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    let idx = (sorted.len() * p).div_ceil(100).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Fetches the server's `/stats` line over a throwaway connection.
fn server_stats(addr: SocketAddr) -> String {
    let (mut writer, mut reader) = connect(addr);
    write_line(&mut writer, "/stats").expect("send /stats");
    writer.flush().expect("flush /stats");
    let mut line = String::new();
    loop {
        match reader.read_frame().expect("read stats frame") {
            Frame::Line(l) if l == "." => return line,
            Frame::Line(l) => line = l,
            other => panic!("unexpected frame in stats response: {other:?}"),
        }
    }
}

/// One closed-loop measurement pass at `conns` connections; returns
/// ops/sec and prints client-side latency percentiles.
fn measure_closed(
    group: &mut BenchGroup,
    net: &AttributedGraph,
    workload: &[String],
    use_cache: bool,
    conns: usize,
) -> f64 {
    let handle = boot(net, use_cache);
    let addr = handle.addr();
    let bench_name = if use_cache { "closed_cache_on" } else { "closed_cache_off" };
    let mut latencies = Vec::new();
    let summary = group.bench_items(bench_name, conns, workload.len(), || {
        latencies = run_closed(addr, workload, conns);
    });
    latencies.sort_unstable();
    eprintln!(
        "net_qps: {bench_name}/{conns} client latency p50={} p95={} p99={} ns",
        percentile(&latencies, 50),
        percentile(&latencies, 95),
        percentile(&latencies, 99),
    );
    eprintln!("net_qps: {bench_name}/{conns} {}", server_stats(addr));
    handle.shutdown();
    handle.join().expect("server thread");
    summary.ops_per_sec()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test")
        || std::env::var("KTG_BENCH_FAST").is_ok_and(|v| v != "0");
    let samples = if quick { 1 } else { 3 };
    let (net, workload) = build(quick);

    let mut group = BenchGroup::new("net_qps");
    group.sample_size(samples).warm_up_time(std::time::Duration::ZERO);
    group.write_in_quick_mode();

    // (use_cache, conns) -> ops_per_sec, closed loop.
    let mut rates: Vec<(bool, usize, f64)> = Vec::new();
    for use_cache in [true, false] {
        for conns in CONN_SWEEP {
            let rate = measure_closed(&mut group, &net, &workload, use_cache, conns);
            rates.push((use_cache, conns, rate));
        }
    }

    // Open-arrival records: one per cache setting at 4 connections.
    for use_cache in [true, false] {
        let handle = boot(&net, use_cache);
        let addr = handle.addr();
        let bench_name = if use_cache { "open_cache_on" } else { "open_cache_off" };
        group.bench_items(bench_name, 4, workload.len(), || {
            run_open(addr, &workload, 4);
        });
        handle.shutdown();
        handle.join().expect("server thread");
    }

    // Headline claim: at 1 connection the result cache pays for the
    // whole network round-trip and then some. One re-measure before
    // failing — a single quick-mode sample on a loaded box can wobble.
    let rate = |cache: bool, conns: usize| {
        rates
            .iter()
            .find(|(c, n, _)| *c == cache && *n == conns)
            .map(|(_, _, r)| *r)
            .expect("swept configuration present")
    };
    let (mut on1, mut off1) = (rate(true, 1), rate(false, 1));
    if on1 <= off1 {
        eprintln!(
            "net_qps: cache-on did not beat cache-off at 1 connection \
             ({on1:.1} vs {off1:.1} qps) — re-measuring once"
        );
        on1 = measure_closed(&mut group, &net, &workload, true, 1);
        off1 = measure_closed(&mut group, &net, &workload, false, 1);
    }
    assert!(
        on1 > off1,
        "cache-on should beat cache-off at 1 connection ({on1:.1} vs {off1:.1} qps)"
    );

    // Latency-vs-offered-load sweep: pace one connection at a fraction
    // of the closed-loop cache-on capacity just measured. `param` is
    // the offered percent; the record's ops/sec is the *completed*
    // rate, which tracks the offered rate until the saturation knee and
    // flattens after it (the 150/75 ratio becomes `net_open_knee_ratio`
    // in the summary).
    const OFFERED_PERCENTS: [usize; 5] = [25, 50, 75, 100, 150];
    let capacity = on1;
    for percent in OFFERED_PERCENTS {
        let offered = capacity * percent as f64 / 100.0;
        let handle = boot(&net, true);
        let addr = handle.addr();
        let mut sojourns = Vec::new();
        let summary = group.bench_items("open_sweep", percent, workload.len(), || {
            sojourns = run_paced(addr, &workload, offered);
        });
        sojourns.sort_unstable();
        eprintln!(
            "net_qps: open_sweep/{percent} offered {offered:.1} qps completed {:.1} qps \
             sojourn p50={} p95={} p99={} ns",
            summary.ops_per_sec(),
            percentile(&sojourns, 50),
            percentile(&sojourns, 95),
            percentile(&sojourns, 99),
        );
        handle.shutdown();
        handle.join().expect("server thread");
    }

    eprintln!(
        "net_qps: {} closed-loop records + 2 open-arrival + {} paced sweep points \
         (quick={quick}); cache speedup {:.2}x at 1 connection",
        rates.len(),
        OFFERED_PERCENTS.len(),
        on1 / off1,
    );
}

//! Throughput (queries/sec) bench for the batched serving engine.
//!
//! Sweeps worker count ∈ {1, 2, 4, 8} × result cache {on, off} over a
//! seeded planted-partition (SBM) graph with Zipf keywords, replaying a
//! Zipf-skewed serving workload (a small pool of distinct mixed
//! KTG/DKTG queries, hot queries repeating often — the regime a result
//! cache exploits) through a fresh [`ServeSession`] per configuration.
//! Each configuration is one [`BenchGroup::bench_items`] record, so the
//! JSON line carries `items` and `ops_per_sec` (queries per second from
//! the fastest sample).
//!
//! Like `bb_scaling`, the JSON sink stays on in quick mode (`--test` /
//! `KTG_BENCH_FAST=1`) via [`BenchGroup::write_in_quick_mode`]: CI's
//! smoke run seeds the perf trajectory, so it must write its records.
//!
//! The binary self-asserts the three properties the serving layer
//! promises, and exits non-zero if any fails:
//!
//! * every configuration returns byte-identical answers (the cached and
//!   parallel paths may only change *when* work happens, never results);
//! * at one thread, cache-on throughput strictly beats cache-off on the
//!   same repeat-heavy workload;
//! * with the cache off, four workers strictly beat one (the executor's
//!   fan-out actually scales) — asserted only when the machine reports
//!   at least four hardware threads, because on a 1-core container four
//!   workers are pure scheduling overhead and the comparison is
//!   physically meaningless (the work-conservation half — identical
//!   answers at every width — is asserted unconditionally above).

use ktg_bench::harness::BenchGroup;
use ktg_core::serve::{CachePolicy, ItemOutcome, ServeOptions, ServeSession, WorkloadItem};
use ktg_core::{bb, AttributedGraph, DktgQuery, Group, KtgQuery};
use ktg_datasets::keywords::{assign_zipf, KeywordModel};
use ktg_datasets::sbm::{planted_partition, SbmParams};
use ktg_datasets::{zipf_indices, QueryGen};

const SEED: u64 = 0xB0B5_CA1E;
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const ZIPF_EXPONENT: f64 = 1.1;

/// An [`ItemOutcome`] with the `cached` flags stripped: two
/// configurations must return identical *results*, but whether a given
/// answer came from the cache legitimately differs per configuration.
#[derive(Debug, PartialEq)]
enum Answer {
    Ktg(Vec<Group>),
    Dktg { groups: Vec<Group>, score_bits: u64 },
}

fn strip(outcomes: &[ItemOutcome]) -> Vec<Answer> {
    outcomes
        .iter()
        .map(|o| match o {
            ItemOutcome::Ktg(a) => Answer::Ktg(a.groups.clone()),
            ItemOutcome::Dktg(a) => {
                Answer::Dktg { groups: a.groups.clone(), score_bits: a.score.to_bits() }
            }
            ItemOutcome::Update { .. } => unreachable!("qps workload has no updates"),
            ItemOutcome::Failed { reason } => unreachable!("bench item failed: {reason}"),
            ItemOutcome::Overloaded => unreachable!("qps sets no admission bound"),
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test")
        || std::env::var("KTG_BENCH_FAST").is_ok_and(|v| v != "0");
    let (n, pool_size, workload_len, samples) =
        if quick { (400, 6, 60, 1) } else { (1200, 12, 240, 3) };

    let params = SbmParams::modular(n, 8);
    let graph = planted_partition(&params, SEED);
    let (vocab, vk) = assign_zipf(n, &KeywordModel::default(), SEED ^ 0x515F);
    let net = AttributedGraph::new(graph, vocab, vk);

    // Distinct query pool: alternating KTG / DKTG over frequency-weighted
    // keyword sets, expanded into a Zipf-skewed repeat stream.
    let keyword_sets =
        QueryGen::new(&net, SEED ^ 0xBEEF).batch(pool_size, 6).expect("bench workload");
    let pool: Vec<WorkloadItem> = keyword_sets
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            let base = KtgQuery::new(q, 3, 2, 5).expect("valid params");
            if i % 2 == 0 {
                WorkloadItem::Ktg(base)
            } else {
                WorkloadItem::Dktg(DktgQuery::new(base, 0.5).expect("valid gamma"))
            }
        })
        .collect();
    let workload: Vec<WorkloadItem> = zipf_indices(pool.len(), workload_len, ZIPF_EXPONENT, SEED)
        .into_iter()
        .map(|i| pool[i].clone())
        .collect();

    let mut group = BenchGroup::new("qps");
    group.sample_size(samples).warm_up_time(std::time::Duration::ZERO);
    group.write_in_quick_mode();

    let mut baseline: Option<Vec<Answer>> = None;
    // (use_cache, threads) -> ops_per_sec, from the bench summaries.
    let mut rates: Vec<(bool, usize, f64)> = Vec::new();

    for use_cache in [true, false] {
        for threads in THREAD_SWEEP {
            let options = ServeOptions {
                threads,
                use_cache,
                cache_entries: 4096,
                engine: bb::BbOptions::vkc_deg(),
                max_inflight: 0,
                ..ServeOptions::default()
            };
            // One long-lived session per configuration: repeated samples
            // measure steady-state serving (warm cache when enabled).
            let mut session = ServeSession::new(net.clone(), options);
            let mut last: Vec<ItemOutcome> = Vec::new();
            let bench_name = if use_cache { "cache_on" } else { "cache_off" };
            let summary = group.bench_items(bench_name, threads, workload.len(), || {
                last = session.run(&workload);
            });
            rates.push((use_cache, threads, summary.ops_per_sec()));

            // Determinism gate: every configuration must return exactly
            // the answers the first configuration returned.
            let answers = strip(&last);
            match &baseline {
                None => baseline = Some(answers),
                Some(expected) => assert_eq!(
                    expected, &answers,
                    "cache={use_cache}/{threads} threads diverged from baseline answers"
                ),
            }
            // A repeat-heavy workload against an enabled cache must hit.
            let stats = session.stats();
            if use_cache {
                assert!(
                    stats.result_hits > 0,
                    "cache-on run recorded no result hits on a Zipf workload"
                );
            } else {
                assert_eq!(stats.result_hits, 0, "cache-off run claimed cache hits");
            }
        }
    }

    let rate = |cache: bool, threads: usize| {
        rates
            .iter()
            .find(|(c, t, _)| *c == cache && *t == threads)
            .map(|(_, _, r)| *r)
            .expect("swept configuration present")
    };

    // The serving layer's two headline claims, asserted on the numbers
    // this very run wrote to bench_results/qps.jsonl.
    let (on1, off1) = (rate(true, 1), rate(false, 1));
    assert!(
        on1 > off1,
        "cache-on should beat cache-off at 1 thread ({on1:.1} vs {off1:.1} qps)"
    );
    let off4 = rate(false, 4);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if cores >= 4 {
        assert!(
            off4 > off1,
            "4 workers should beat 1 with the cache off ({off4:.1} vs {off1:.1} qps)"
        );
    } else {
        eprintln!(
            "qps: thread-scaling assert skipped ({cores} hardware thread(s) — \
             a 4-worker win is not physically expressible)"
        );
    }

    eprintln!(
        "qps: {} records (quick={quick}); cache speedup {:.2}x at 1 thread, \
         thread speedup {:.2}x at 4 workers",
        rates.len(),
        on1 / off1,
        off4 / off1,
    );

    policy_hit_rate_sweep(&net, &mut group, quick);
}

/// The eviction-policy sweep: Zipf-skewed streams over a query pool
/// several times larger than the cache, so every shard is under
/// constant eviction pressure, with the pool sorted so the Zipf head is
/// also the *costly* end — the serving regime the cost-aware policy is
/// built for (popular queries over dense keyword regions are exactly
/// the ones with big candidate pools). FIFO evicts a hot entry whenever
/// any cold query lands in its shard; the cost-aware admission floor
/// turns those cheap one-off entries away and keeps the hot-and-heavy
/// head resident, so at equal capacity it must match or beat FIFO's hit
/// rate. The sweep runs at three skew levels (Zipf exponent 0.8 / 1.1 /
/// 1.4 — the JSON `param` is the exponent × 100), tracing the hit-rate
/// curve from weakly to strongly skewed workloads; the binary asserts
/// cost >= FIFO **at every point**, plus byte-identical answers per
/// point, and exits non-zero on any failure.
fn policy_hit_rate_sweep(net: &AttributedGraph, group: &mut BenchGroup, quick: bool) {
    for zipf in [0.8, 1.1, 1.4] {
        policy_hit_rate_at(net, group, quick, zipf);
    }
}

/// One point of the policy sweep: both policies replay the same
/// `zipf`-skewed workload at equal cache capacity.
fn policy_hit_rate_at(net: &AttributedGraph, group: &mut BenchGroup, quick: bool, zipf: f64) {
    let (pool_size, workload_len) = if quick { (48, 360) } else { (48, 1440) };
    // 16 cache shards × 1 entry each: 48 distinct queries compete for
    // 16 slots, the regime where the two policies actually differ.
    let cache_entries = 16;

    let keyword_sets =
        QueryGen::new(net, SEED ^ 0x70_11C7).batch(pool_size, 5).expect("policy pool");
    let mut pool: Vec<WorkloadItem> = keyword_sets
        .into_iter()
        .map(|q| WorkloadItem::Ktg(KtgQuery::new(q, 3, 2, 5).expect("valid params")))
        .collect();
    // Rank the pool hot = heavy: solve each distinct query once, cache
    // off, and sort by measured cost descending before the Zipf draw
    // assigns frequencies (index 0 is the hottest).
    let mut probe = ServeSession::new(
        net.clone(),
        ServeOptions { threads: 1, use_cache: false, ..ServeOptions::default() },
    );
    let mut costs: Vec<(std::time::Duration, WorkloadItem)> = pool
        .drain(..)
        .map(|item| {
            let start = std::time::Instant::now();
            let _ = std::hint::black_box(probe.run(std::slice::from_ref(&item)));
            (start.elapsed(), item)
        })
        .collect();
    costs.sort_by_key(|probe| std::cmp::Reverse(probe.0));
    let pool: Vec<WorkloadItem> = costs.into_iter().map(|(_, item)| item).collect();
    let workload: Vec<WorkloadItem> = zipf_indices(pool.len(), workload_len, zipf, SEED ^ 0x9C)
        .into_iter()
        .map(|i| pool[i].clone())
        .collect();
    let param = (zipf * 100.0) as usize;

    let mut baseline: Option<Vec<Answer>> = None;
    let mut hit_rates: Vec<(CachePolicy, f64)> = Vec::new();
    for cache_policy in [CachePolicy::Fifo, CachePolicy::Cost] {
        let options = ServeOptions {
            threads: 1,
            cache_entries,
            cache_policy,
            // Isolate the eviction policy: subset seeding would let the
            // cost run skip work FIFO performs, muddying the hit rates.
            subset_reuse: false,
            ..ServeOptions::default()
        };
        let mut session = ServeSession::new(net.clone(), options);
        let mut last: Vec<ItemOutcome> = Vec::new();
        let name = match cache_policy {
            CachePolicy::Fifo => "policy_fifo",
            CachePolicy::Cost => "policy_cost",
        };
        group.bench_items(name, param, workload.len(), || {
            last = session.run(&workload);
        });
        let answers = strip(&last);
        match &baseline {
            None => baseline = Some(answers),
            Some(expected) => assert_eq!(
                expected, &answers,
                "policy {cache_policy:?} changed answers — eviction must be invisible"
            ),
        }
        let stats = session.stats();
        let lookups = (stats.result_hits + stats.result_misses).max(1);
        hit_rates.push((cache_policy, stats.result_hits as f64 / lookups as f64));
    }

    let rate = |p: CachePolicy| {
        hit_rates.iter().find(|(q, _)| *q == p).map(|(_, r)| *r).expect("swept")
    };
    let (fifo, cost) = (rate(CachePolicy::Fifo), rate(CachePolicy::Cost));
    assert!(
        cost >= fifo,
        "cost-aware hit rate {:.1}% fell below FIFO's {:.1}% at capacity {cache_entries}, \
         zipf {zipf}",
        cost * 100.0,
        fifo * 100.0
    );
    eprintln!(
        "qps: policy ok at zipf {zipf} (cost {:.1}% >= fifo {:.1}% hit rate, {pool_size} \
         distinct queries over {cache_entries} cache entries)",
        cost * 100.0,
        fifo * 100.0
    );
}

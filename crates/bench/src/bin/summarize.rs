//! Bench-results summarizer: `bench_results/*.jsonl` → `BENCH_*.json`.
//!
//! The JSON-lines sinks append one record per configuration per run, so
//! a long-lived checkout accumulates a full perf history — good for
//! trajectories, bad for machines that just want "the current numbers".
//! This binary folds each append-only log into one deterministic JSON
//! document: the **latest** record per `(bench, param)` pair, plus the
//! derived headline ratios the CI gate asserts (cache speedup, thread
//! scaling, cost-vs-FIFO policy throughput, compressed-decode overhead,
//! bundle load-vs-save). Hand-rolled parsing against the harness's known
//! flat-object shape — the workspace's dependency budget has no serde,
//! and the two writers ([`ktg_bench::harness::Summary::to_json_line`]
//! and `bb_scaling`'s richer record) share it.
//!
//! Usage: `summarize [OUT_DIR]` — reads every known group log under
//! `$KTG_BENCH_OUT` (default `bench_results/`): `qps.jsonl`,
//! `bb_scaling.jsonl`, `net_qps.jsonl`, `scale.jsonl`; writes
//! `OUT_DIR/BENCH_<group>.json` for each log found (default `OUT_DIR` is
//! the current directory). Missing individual logs are skipped; exits
//! non-zero when **no** log yields records, so CI cannot mistake a no-op
//! for a summary.

use std::path::PathBuf;

/// The groups the summarizer folds, in output order.
const GROUPS: [&str; 4] = ["qps", "bb_scaling", "net_qps", "scale"];

/// One parsed record: the fields the summary re-emits. `items` and
/// `ops_per_sec` are zero for writers that do not measure throughput
/// (`bb_scaling` records raw stats instead).
#[derive(Clone, Debug, PartialEq)]
struct Record {
    bench: String,
    param: String,
    items: u64,
    ops_per_sec: f64,
    min_ns: u64,
}

/// Extracts `"key":"value"` (string form) from a flat JSON-object line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    line[start..].find('"').map(|end| line[start..start + end].to_string())
}

/// Extracts `"key":number` from a flat JSON-object line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_record(line: &str) -> Option<Record> {
    Some(Record {
        bench: str_field(line, "bench")?,
        param: str_field(line, "param")?,
        items: num_field(line, "items").unwrap_or(0.0) as u64,
        ops_per_sec: num_field(line, "ops_per_sec").unwrap_or(0.0),
        min_ns: num_field(line, "min_ns")? as u64,
    })
}

/// Latest record per `(bench, param)`, in first-seen order (so the
/// output ordering is stable across runs of the same sweep).
fn latest_per_config(lines: &str) -> Vec<Record> {
    let mut out: Vec<Record> = Vec::new();
    for record in lines.lines().filter_map(parse_record) {
        match out.iter_mut().find(|r| r.bench == record.bench && r.param == record.param) {
            Some(slot) => *slot = record,
            None => out.push(record),
        }
    }
    out
}

/// Locates a series point; `param == "*"` matches the first record of
/// that bench regardless of parameter.
fn find<'r>(records: &'r [Record], bench: &str, param: &str) -> Option<&'r Record> {
    records.iter().find(|r| r.bench == bench && (param == "*" || r.param == param))
}

/// Ratio of two series' throughput at the same parameter, if both exist.
fn ops_ratio(records: &[Record], num: (&str, &str), den: (&str, &str)) -> Option<f64> {
    match (find(records, num.0, num.1), find(records, den.0, den.1)) {
        (Some(n), Some(d)) if d.ops_per_sec > 0.0 => Some(n.ops_per_sec / d.ops_per_sec),
        _ => None,
    }
}

/// Ratio of two series' fastest samples (`num.min_ns / den.min_ns`):
/// used where the writer records times, not throughput. Values > 1 mean
/// the numerator is *slower* — name the derived entry accordingly.
fn time_ratio(records: &[Record], num: (&str, &str), den: (&str, &str)) -> Option<f64> {
    match (find(records, num.0, num.1), find(records, den.0, den.1)) {
        (Some(n), Some(d)) if d.min_ns > 0 => Some(n.min_ns as f64 / d.min_ns as f64),
        _ => None,
    }
}

/// The derived headline ratios per group. The qps policy ratio reads the
/// middle point of the Zipf sweep (exponent 1.1, param `110`).
fn derived(group: &str, records: &[Record]) -> Vec<(&'static str, Option<f64>)> {
    match group {
        "qps" => vec![
            ("cache_speedup_1t", ops_ratio(records, ("cache_on", "1"), ("cache_off", "1"))),
            ("thread_speedup_off_4t", ops_ratio(records, ("cache_off", "4"), ("cache_off", "1"))),
            ("cost_over_fifo", ops_ratio(records, ("policy_cost", "110"), ("policy_fifo", "110"))),
        ],
        "bb_scaling" => vec![
            ("bitmap_speedup_4t", time_ratio(records, ("bitmap", "1"), ("bitmap", "4"))),
            ("oracle_over_bitmap_1t", time_ratio(records, ("oracle", "1"), ("bitmap", "1"))),
        ],
        "net_qps" => vec![
            (
                "net_cache_speedup_1c",
                ops_ratio(records, ("closed_cache_on", "1"), ("closed_cache_off", "1")),
            ),
            // Completed rate at 150% vs 75% offered load from the paced
            // open-arrival sweep: ≈2.0 means throughput still tracks the
            // offered rate at 150% of closed-loop capacity (no saturation
            // knee below that), ≈1.0 means it flattened by 75%.
            (
                "net_open_knee_ratio",
                ops_ratio(records, ("open_sweep", "150"), ("open_sweep", "75")),
            ),
        ],
        "scale" => vec![
            (
                "build_speedup_4t",
                time_ratio(records, ("nlrnl_build_threads", "1"), ("nlrnl_build_threads", "4")),
            ),
            ("decode_overhead", time_ratio(records, ("bfs_compressed", "*"), ("bfs_flat", "*"))),
            ("load_over_save", time_ratio(records, ("bundle_load", "*"), ("bundle_save", "*"))),
        ],
        _ => Vec::new(),
    }
}

fn render(group: &str, records: &[Record]) -> String {
    let mut body = format!("{{\"group\":\"{group}\",\"records\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"bench\":\"{}\",\"param\":\"{}\",\"items\":{},\
             \"ops_per_sec\":{:.3},\"min_ns\":{}}}",
            r.bench, r.param, r.items, r.ops_per_sec, r.min_ns
        ));
    }
    body.push_str("],\"derived\":{");
    let mut first = true;
    for (name, value) in derived(group, records) {
        if let Some(v) = value {
            if !first {
                body.push(',');
            }
            first = false;
            body.push_str(&format!("\"{name}\":{v:.3}"));
        }
    }
    body.push_str("}}");
    body
}

fn main() {
    let out_dir = PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| ".".to_string()));
    let dir = PathBuf::from(std::env::var("KTG_BENCH_OUT").unwrap_or_else(|_| "bench_results".into()));
    let mut written = 0usize;
    for group in GROUPS {
        let log = dir.join(format!("{group}.jsonl"));
        let text = match std::fs::read_to_string(&log) {
            Ok(text) => text,
            Err(_) => continue, // absent logs are not an error per-group
        };
        let records = latest_per_config(&text);
        if records.is_empty() {
            eprintln!("summarize: {} holds no parseable records, skipping", log.display());
            continue;
        }
        let json = render(group, &records);
        let out_path = out_dir.join(format!("BENCH_{group}.json"));
        if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
            eprintln!("summarize: cannot write {}: {e}", out_path.display());
            std::process::exit(1);
        }
        eprintln!(
            "summarize: {} configs from {} -> {}",
            records.len(),
            log.display(),
            out_path.display()
        );
        written += 1;
    }
    if written == 0 {
        eprintln!("summarize: no bench logs under {} yielded records", dir.display());
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "{\"group\":\"qps\",\"bench\":\"cache_on\",\"param\":\"1\",\
        \"samples\":3,\"items\":240,\"ops_per_sec\":1234.567,\
        \"min_ns\":194400000,\"mean_ns\":2,\"median_ns\":2,\"p95_ns\":2,\"max_ns\":2}";

    // The bb_scaling writer's richer shape: no items / ops_per_sec.
    const BB_LINE: &str = "{\"group\":\"bb_scaling\",\"bench\":\"bitmap\",\"param\":\"1\",\
        \"samples\":5,\"queries\":5,\"solved\":5,\"mean_ns\":100,\"min_ns\":80,\"nodes\":7,\
        \"distance_checks\":3,\"kline_filtered\":0,\"keyword_pruned\":0,\
        \"groups_evaluated\":2,\"truncated\":0}";

    #[test]
    fn parses_the_harness_line_shape() {
        let r = parse_record(LINE).expect("parseable");
        assert_eq!(r.bench, "cache_on");
        assert_eq!(r.param, "1");
        assert_eq!(r.items, 240);
        assert_eq!(r.min_ns, 194_400_000);
        assert!((r.ops_per_sec - 1234.567).abs() < 1e-9);
        assert_eq!(parse_record("not json"), None);
    }

    #[test]
    fn parses_the_bb_scaling_shape_without_throughput_fields() {
        let r = parse_record(BB_LINE).expect("parseable");
        assert_eq!(r.bench, "bitmap");
        assert_eq!(r.min_ns, 80);
        assert_eq!(r.items, 0);
        assert_eq!(r.ops_per_sec, 0.0);
    }

    #[test]
    fn later_records_replace_earlier_ones() {
        let log = format!("{LINE}\n{}\n", LINE.replace("1234.567", "999.0"));
        let latest = latest_per_config(&log);
        assert_eq!(latest.len(), 1);
        assert!((latest[0].ops_per_sec - 999.0).abs() < 1e-9);
    }

    fn mk(bench: &str, param: &str, ops: f64, min_ns: u64) -> Record {
        Record { bench: bench.into(), param: param.into(), items: 10, ops_per_sec: ops, min_ns }
    }

    #[test]
    fn qps_derived_ratios_and_rendering() {
        let records = vec![
            mk("cache_on", "1", 200.0, 1000),
            mk("cache_off", "1", 100.0, 2000),
            mk("cache_off", "4", 300.0, 700),
            mk("policy_fifo", "110", 50.0, 9000),
            mk("policy_cost", "110", 60.0, 8000),
        ];
        let json = render("qps", &records);
        assert!(json.contains("\"cache_speedup_1t\":2.000"), "{json}");
        assert!(json.contains("\"thread_speedup_off_4t\":3.000"), "{json}");
        assert!(json.contains("\"cost_over_fifo\":1.200"), "{json}");
        assert!(json.starts_with("{\"group\":\"qps\""));
        // Missing series: the derived entry is simply omitted.
        let partial = render("qps", &records[..2]);
        assert!(partial.contains("cache_speedup_1t"));
        assert!(!partial.contains("thread_speedup_off_4t"));
    }

    #[test]
    fn scale_derived_ratios_use_time_and_wildcard_params() {
        let records = vec![
            mk("nlrnl_build_threads", "1", 0.0, 4000),
            mk("nlrnl_build_threads", "4", 0.0, 2000),
            mk("bfs_flat", "48000", 0.0, 1000),
            mk("bfs_compressed", "48000", 0.0, 1300),
            mk("bundle_save", "48000", 0.0, 500),
            mk("bundle_load", "48000", 0.0, 250),
        ];
        let json = render("scale", &records);
        assert!(json.contains("\"build_speedup_4t\":2.000"), "{json}");
        assert!(json.contains("\"decode_overhead\":1.300"), "{json}");
        assert!(json.contains("\"load_over_save\":0.500"), "{json}");
    }

    #[test]
    fn net_qps_knee_ratio_compares_sweep_points() {
        let records = vec![
            mk("closed_cache_on", "1", 400.0, 1000),
            mk("closed_cache_off", "1", 100.0, 4000),
            mk("open_sweep", "75", 300.0, 2000),
            mk("open_sweep", "150", 600.0, 2000),
        ];
        let json = render("net_qps", &records);
        assert!(json.contains("\"net_cache_speedup_1c\":4.000"), "{json}");
        assert!(json.contains("\"net_open_knee_ratio\":2.000"), "{json}");
        // Without the sweep, the knee entry is omitted, not zeroed.
        let partial = render("net_qps", &records[..2]);
        assert!(!partial.contains("net_open_knee_ratio"), "{partial}");
    }

    #[test]
    fn bb_scaling_derived_ratios_come_from_min_times() {
        let records = vec![
            mk("bitmap", "1", 0.0, 4000),
            mk("bitmap", "4", 0.0, 1000),
            mk("oracle", "1", 0.0, 8000),
        ];
        let json = render("bb_scaling", &records);
        assert!(json.contains("\"bitmap_speedup_4t\":4.000"), "{json}");
        assert!(json.contains("\"oracle_over_bitmap_1t\":2.000"), "{json}");
    }
}

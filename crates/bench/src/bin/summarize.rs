//! Bench-results summarizer: `bench_results/qps.jsonl` → `BENCH_qps.json`.
//!
//! The JSON-lines sinks append one record per configuration per run, so
//! a long-lived checkout accumulates a full perf history — good for
//! trajectories, bad for machines that just want "the current numbers".
//! This binary folds the append-only log into one deterministic JSON
//! document: the **latest** record per `(bench, param)` pair, plus the
//! derived headline ratios the CI gate asserts (cache speedup, thread
//! scaling, cost-vs-FIFO policy throughput). Hand-rolled parsing against
//! the harness's known flat-object shape — the workspace's dependency
//! budget has no serde, and [`ktg_bench::harness::Summary::to_json_line`]
//! is the only writer.
//!
//! Usage: `summarize [OUT_PATH]` — reads `$KTG_BENCH_OUT/qps.jsonl`
//! (default `bench_results/qps.jsonl`), writes `OUT_PATH` (default
//! `BENCH_qps.json`). Exits non-zero when the log is missing or empty,
//! so CI cannot mistake a no-op for a summary.

use std::path::PathBuf;

/// One parsed `qps.jsonl` record: the fields the summary re-emits.
#[derive(Clone, Debug, PartialEq)]
struct QpsRecord {
    bench: String,
    param: String,
    items: u64,
    ops_per_sec: f64,
    min_ns: u64,
}

/// Extracts `"key":"value"` (string form) from a flat JSON-object line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    line[start..].find('"').map(|end| line[start..start + end].to_string())
}

/// Extracts `"key":number` from a flat JSON-object line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_record(line: &str) -> Option<QpsRecord> {
    Some(QpsRecord {
        bench: str_field(line, "bench")?,
        param: str_field(line, "param")?,
        items: num_field(line, "items")? as u64,
        ops_per_sec: num_field(line, "ops_per_sec")?,
        min_ns: num_field(line, "min_ns")? as u64,
    })
}

/// Latest record per `(bench, param)`, in first-seen order (so the
/// output ordering is stable across runs of the same sweep).
fn latest_per_config(lines: &str) -> Vec<QpsRecord> {
    let mut out: Vec<QpsRecord> = Vec::new();
    for record in lines.lines().filter_map(parse_record) {
        match out.iter_mut().find(|r| r.bench == record.bench && r.param == record.param) {
            Some(slot) => *slot = record,
            None => out.push(record),
        }
    }
    out
}

/// Ratio of two series' throughput at the same parameter, if both exist.
fn ratio(records: &[QpsRecord], num: (&str, &str), den: (&str, &str)) -> Option<f64> {
    let find = |(bench, param): (&str, &str)| {
        records.iter().find(|r| r.bench == bench && r.param == param).map(|r| r.ops_per_sec)
    };
    match (find(num), find(den)) {
        (Some(n), Some(d)) if d > 0.0 => Some(n / d),
        _ => None,
    }
}

fn render(records: &[QpsRecord]) -> String {
    let mut body = String::from("{\"group\":\"qps\",\"records\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"bench\":\"{}\",\"param\":\"{}\",\"items\":{},\
             \"ops_per_sec\":{:.3},\"min_ns\":{}}}",
            r.bench, r.param, r.items, r.ops_per_sec, r.min_ns
        ));
    }
    body.push_str("],\"derived\":{");
    let derived = [
        ("cache_speedup_1t", ratio(records, ("cache_on", "1"), ("cache_off", "1"))),
        ("thread_speedup_off_4t", ratio(records, ("cache_off", "4"), ("cache_off", "1"))),
        ("cost_over_fifo", ratio(records, ("policy_cost", "1"), ("policy_fifo", "1"))),
    ];
    let mut first = true;
    for (name, value) in derived {
        if let Some(v) = value {
            if !first {
                body.push(',');
            }
            first = false;
            body.push_str(&format!("\"{name}\":{v:.3}"));
        }
    }
    body.push_str("}}");
    body
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_qps.json".to_string());
    let dir = PathBuf::from(std::env::var("KTG_BENCH_OUT").unwrap_or_else(|_| "bench_results".into()));
    let log = dir.join("qps.jsonl");
    let text = match std::fs::read_to_string(&log) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("summarize: cannot read {}: {e}", log.display());
            std::process::exit(1);
        }
    };
    let records = latest_per_config(&text);
    if records.is_empty() {
        eprintln!("summarize: {} holds no parseable qps records", log.display());
        std::process::exit(1);
    }
    let json = render(&records);
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("summarize: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("summarize: {} configs from {} -> {out_path}", records.len(), log.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "{\"group\":\"qps\",\"bench\":\"cache_on\",\"param\":\"1\",\
        \"samples\":3,\"items\":240,\"ops_per_sec\":1234.567,\
        \"min_ns\":194400000,\"mean_ns\":2,\"median_ns\":2,\"p95_ns\":2,\"max_ns\":2}";

    #[test]
    fn parses_the_harness_line_shape() {
        let r = parse_record(LINE).expect("parseable");
        assert_eq!(r.bench, "cache_on");
        assert_eq!(r.param, "1");
        assert_eq!(r.items, 240);
        assert_eq!(r.min_ns, 194_400_000);
        assert!((r.ops_per_sec - 1234.567).abs() < 1e-9);
        assert_eq!(parse_record("not json"), None);
    }

    #[test]
    fn later_records_replace_earlier_ones() {
        let log = format!("{LINE}\n{}\n", LINE.replace("1234.567", "999.0"));
        let latest = latest_per_config(&log);
        assert_eq!(latest.len(), 1);
        assert!((latest[0].ops_per_sec - 999.0).abs() < 1e-9);
    }

    #[test]
    fn derived_ratios_and_rendering() {
        let mk = |bench: &str, param: &str, ops: f64| QpsRecord {
            bench: bench.into(),
            param: param.into(),
            items: 10,
            ops_per_sec: ops,
            min_ns: 1000,
        };
        let records = vec![
            mk("cache_on", "1", 200.0),
            mk("cache_off", "1", 100.0),
            mk("cache_off", "4", 300.0),
            mk("policy_fifo", "1", 50.0),
            mk("policy_cost", "1", 60.0),
        ];
        let json = render(&records);
        assert!(json.contains("\"cache_speedup_1t\":2.000"), "{json}");
        assert!(json.contains("\"thread_speedup_off_4t\":3.000"), "{json}");
        assert!(json.contains("\"cost_over_fifo\":1.200"), "{json}");
        assert!(json.starts_with("{\"group\":\"qps\""));
        // Missing series: the derived entry is simply omitted.
        let partial = render(&records[..2]);
        assert!(partial.contains("cache_speedup_1t"));
        assert!(!partial.contains("thread_speedup_off_4t"));
    }
}

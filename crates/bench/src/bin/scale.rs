//! Scale bench: the substrate-level numbers behind the 10M-vertex story.
//!
//! Four series over a seeded block-diagonal SBM (chunked generators, so
//! the instance is built the same way a 10M-vertex run would be) plus
//! the figure-9 index comparison ported off the legacy cargo-bench
//! target:
//!
//! * `fig9 nl_build` / `nlrnl_build` — NL vs NLRNL construction per
//!   dataset profile (Fig 9b), with the Fig 9a space comparison printed
//!   once per profile (bytes are deterministic).
//! * `nlrnl_build_threads` — partitioned parallel NLRNL construction
//!   across worker counts. With ≥ 4 hardware threads and full sampling,
//!   4 workers must beat 1 by ≥ 1.5× (the partition merge is cheap).
//! * `compress` + `bfs_flat` / `bfs_compressed` — compressed-adjacency
//!   build cost and the decode overhead a full BFS sweep pays for the
//!   varint blocks. Compressed heap bytes must come in under flat (the
//!   bench graph honors the ≥ 12 average degree where delta+varint
//!   wins), and both sweeps must visit identical distance sums.
//! * `bundle_save` / `bundle_load` — binary persistence round-trip
//!   (graph + keywords + NLRNL), the O(1)-ish load path that replaces
//!   rebuild-on-start. The loaded bundle must equal what was saved.
//!
//! Like `bb_scaling` and `qps`, the JSON sink stays on in quick mode
//! (`--test` / `KTG_BENCH_FAST=1`): CI's smoke run seeds the perf
//! trajectory. The binary also asserts the differential property the
//! whole format story rests on: a [`ServeSession`] over the compressed
//! store answers byte-identically to one over the flat store.

use ktg_bench::harness::BenchGroup;
use ktg_core::serve::{ServeOptions, ServeSession, WorkloadItem};
use ktg_core::{bb, AttributedGraph, KtgQuery};
use ktg_datasets::keywords::{assign_zipf_chunked, KeywordModel};
use ktg_datasets::sbm::{planted_partition_chunked, SbmParams};
use ktg_datasets::{DatasetProfile, QueryGen};
use ktg_graph::{Adjacency, GraphFormat, GraphStore};
use ktg_index::{persist, NlIndex, NlrnlIndex};
use std::time::Duration;

const SEED: u64 = 0x5CA1_AB1E;
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const CHUNK: usize = 1 << 16;

/// Full BFS sweep from every 64th vertex, summing distances: a pure
/// adjacency-decode workload (no index, no allocation-heavy answer).
fn bfs_sweep<A: Adjacency>(graph: &A) -> u64 {
    let n = graph.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    let mut total = 0u64;
    for source in (0..n).step_by(64) {
        for d in dist.iter_mut() {
            *d = u32::MAX;
        }
        queue.clear();
        dist[source] = 0;
        queue.push_back(ktg_common::VertexId(source as u32));
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            graph.for_each_neighbor(u, |v| {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = du + 1;
                    queue.push_back(v);
                }
            });
        }
        total += dist.iter().filter(|&&d| d != u32::MAX).map(|&d| d as u64).sum::<u64>();
    }
    total
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test")
        || std::env::var("KTG_BENCH_FAST").is_ok_and(|v| v != "0");
    let (profile_scale, n, blocks) = if quick { (60, 12_000, 120) } else { (200, 48_000, 480) };

    let mut group = BenchGroup::new("scale");
    group.sample_size(if quick { 1 } else { 5 }).warm_up_time(Duration::from_millis(
        if quick { 0 } else { 300 },
    ));
    group.write_in_quick_mode();

    // Figure 9 (ported from the retired cargo-bench target): NL vs NLRNL
    // construction time per dataset profile, space printed once since
    // bytes are deterministic. Expected shape: NLRNL stores less (half
    // storage + skips the widest level) but takes longer to build.
    for profile in DatasetProfile::PRIMARY {
        let net = profile.instantiate(profile_scale, 42);
        let graph = net.graph();
        let nl = NlIndex::build(graph);
        let nlrnl = NlrnlIndex::build(graph);
        eprintln!(
            "scale fig9a space {}: NL = {} bytes, NLRNL = {} bytes",
            profile,
            nl.space().total_bytes(),
            nlrnl.space().total_bytes()
        );
        group.bench("nl_build", profile.name(), || NlIndex::build(graph));
        group.bench("nlrnl_build", profile.name(), || NlrnlIndex::build(graph));
    }

    // The scale instance: block-diagonal SBM (p_out = 0) through the
    // chunked builder — components stay block-sized, so NLRNL's
    // per-vertex BFS cost is bounded and the sweep measures the
    // partitioned construction, not one giant component. Block size 100
    // at p_in = 0.12 puts the average degree ≈ 12, the regime where
    // delta+varint compression beats flat CSR.
    let params = SbmParams { n, blocks, p_in: 0.12, p_out: 0.0 };
    let flat = planted_partition_chunked(&params, SEED, CHUNK).expect("chunked SBM");
    let (vocab, vk) = assign_zipf_chunked(n, &KeywordModel::default(), SEED ^ 0x515F);

    // Partitioned parallel NLRNL construction across worker counts.
    let mut build_mins: Vec<(usize, Duration)> = Vec::new();
    for threads in THREAD_SWEEP {
        let summary = group.bench("nlrnl_build_threads", threads, || {
            NlrnlIndex::build_with_threads(&flat, threads)
        });
        build_mins.push((threads, summary.min));
    }
    let min_at = |threads: usize| {
        build_mins.iter().find(|(t, _)| *t == threads).map(|(_, d)| *d).expect("swept")
    };
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let speedup = min_at(1).as_secs_f64() / min_at(4).as_secs_f64().max(1e-12);
    if cores >= 4 && !quick {
        assert!(
            speedup >= 1.5,
            "partitioned NLRNL build: 4 workers only {speedup:.2}x over 1 \
             (expected >= 1.5x on {cores} hardware threads)"
        );
    }
    eprintln!(
        "scale: nlrnl build {n} vertices — {:?} at 1 thread, {:?} at 4 ({speedup:.2}x, \
         {cores} hardware thread(s){})",
        min_at(1),
        min_at(4),
        if quick { ", quick mode: assert skipped" } else { "" }
    );

    // Space vs format, and the decode overhead the compressed blocks pay.
    let comp_store = GraphStore::from_csr(flat.clone(), GraphFormat::Compressed);
    group.bench("compress", n, || GraphStore::from_csr(flat.clone(), GraphFormat::Compressed));
    let flat_store = GraphStore::Flat(flat.clone());
    let (flat_bytes, comp_bytes) = (flat_store.heap_bytes(), comp_store.heap_bytes());
    assert!(
        comp_bytes < flat_bytes,
        "compressed adjacency ({comp_bytes} B) should undercut flat ({flat_bytes} B) \
         at average degree {:.1}",
        2.0 * flat.num_edges() as f64 / n as f64
    );
    eprintln!(
        "scale: space at {n} vertices / {} edges — flat {flat_bytes} B, \
         compressed {comp_bytes} B ({:.1}% of flat)",
        flat.num_edges(),
        100.0 * comp_bytes as f64 / flat_bytes as f64
    );
    let flat_sum = bfs_sweep(&flat_store);
    let comp_sum = bfs_sweep(&comp_store);
    assert_eq!(flat_sum, comp_sum, "BFS sweep diverged between formats");
    let s_flat = group.bench("bfs_flat", n, || bfs_sweep(&flat_store));
    let s_comp = group.bench("bfs_compressed", n, || bfs_sweep(&comp_store));
    eprintln!(
        "scale: BFS decode overhead {:.2}x (flat {:?}, compressed {:?})",
        s_comp.min.as_secs_f64() / s_flat.min.as_secs_f64().max(1e-12),
        s_flat.min,
        s_comp.min
    );

    // Binary persistence: save and load the full bundle (compressed
    // graph + keywords + NLRNL index) through memory.
    let index = NlrnlIndex::build_with_threads(&flat, cores.min(8));
    let mut bytes: Vec<u8> = Vec::new();
    persist::save_bundle(&comp_store, &vocab, &vk, Some(&index), &mut bytes)
        .expect("bundle save");
    group.bench("bundle_save", n, || {
        let mut sink: Vec<u8> = Vec::with_capacity(bytes.len());
        persist::save_bundle(&comp_store, &vocab, &vk, Some(&index), &mut sink)
            .expect("bundle save");
        sink.len()
    });
    let loaded = persist::load_bundle(bytes.as_slice()).expect("bundle load");
    assert_eq!(loaded.graph, comp_store, "bundle round-trip changed the graph");
    assert_eq!(loaded.keywords, vk, "bundle round-trip changed the keyword arena");
    assert!(loaded.index.is_some(), "bundle dropped the NLRNL index");
    group.bench("bundle_load", n, || persist::load_bundle(bytes.as_slice()).expect("bundle load"));
    eprintln!("scale: bundle {} bytes for {n} vertices (graph + keywords + index)", bytes.len());

    // The differential gate: serving over the compressed store must
    // answer byte-identically to serving over the flat store.
    let queries = if quick { 4 } else { 12 };
    let net_flat = AttributedGraph::with_store(flat_store, vocab.clone(), vk.clone());
    let net_comp = AttributedGraph::with_store(comp_store, vocab, vk);
    let workload: Vec<WorkloadItem> = QueryGen::new(&net_flat, SEED ^ 0xBEEF)
        .batch(queries, 5)
        .expect("scale workload")
        .into_iter()
        .map(|q| WorkloadItem::Ktg(KtgQuery::new(q, 3, 2, 5).expect("valid params")))
        .collect();
    let options =
        ServeOptions { threads: 1, engine: bb::BbOptions::vkc_deg(), ..ServeOptions::default() };
    let out_flat = ServeSession::new(net_flat, options.clone()).run(&workload);
    let out_comp = ServeSession::new(net_comp, options).run(&workload);
    assert_eq!(out_flat, out_comp, "compressed-format serving diverged from flat");
    eprintln!(
        "scale: done (quick={quick}); flat/compressed serving identical over {queries} queries"
    );
}

//! Plain-text and CSV report emission.
//!
//! The `experiments` binary prints each figure as a markdown table (one
//! row per algorithm, one column per swept parameter value — the same
//! series the paper plots) and mirrors every table into
//! `bench_results/<name>.csv` for postprocessing. Implemented with
//! `std::fmt`/`std::fs` only (no serde needed for flat tables).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A rectangular latency table: rows = series (algorithms), columns =
/// parameter values.
pub struct Table {
    title: String,
    /// Column header (the swept parameter), e.g. "p".
    param: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Starts a table with the given title and swept-parameter name.
    pub fn new(title: impl Into<String>, param: impl Into<String>) -> Self {
        Table { title: title.into(), param: param.into(), columns: Vec::new(), rows: Vec::new() }
    }

    /// Declares the column values (e.g. `["3", "4", "5", "6", "7"]`).
    pub fn columns<S: Into<String>>(&mut self, cols: impl IntoIterator<Item = S>) -> &mut Self {
        self.columns = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Adds one series row.
    pub fn row<S: Into<String>>(
        &mut self,
        name: impl Into<String>,
        cells: impl IntoIterator<Item = S>,
    ) -> &mut Self {
        self.rows.push((name.into(), cells.into_iter().map(Into::into).collect()));
        self
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = write!(out, "| {} |", self.param);
        for c in &self.columns {
            let _ = write!(out, " {c} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.columns {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for (name, cells) in &self.rows {
            let _ = write!(out, "| {name} |");
            for c in cells {
                let _ = write!(out, " {c} |");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders as CSV (header row then series rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.param);
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        let _ = writeln!(out);
        for (name, cells) in &self.rows {
            let _ = write!(out, "{name}");
            for c in cells {
                let _ = write!(out, ",{c}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes the CSV rendering to `dir/<slug>.csv`, creating `dir`.
    pub fn write_csv(&self, dir: impl AsRef<Path>, slug: &str) -> io::Result<PathBuf> {
        fs::create_dir_all(dir.as_ref())?;
        let path = dir.as_ref().join(format!("{slug}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Human-readable duration: ms with three significant decimals, or µs for
/// sub-millisecond values.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us >= 1000 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{us}us")
    }
}

/// Human-readable byte count.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{value:.2}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Fig X", "p");
        t.columns(["3", "4"]);
        t.row("ALGO-A", ["1ms", "2ms"]);
        t.row("ALGO-B", ["3ms", "4ms"]);
        let md = t.to_markdown();
        assert!(md.contains("### Fig X"));
        assert!(md.contains("| p | 3 | 4 |"));
        assert!(md.contains("| ALGO-B | 3ms | 4ms |"));
    }

    #[test]
    fn csv_shape() {
        let mut t = Table::new("Fig X", "k");
        t.columns(["1", "2"]);
        t.row("A", ["9", "8"]);
        assert_eq!(t.to_csv(), "k,1,2\nA,9,8\n");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(250)), "250us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MiB");
    }

    #[test]
    fn csv_written_to_disk() {
        let dir = std::env::temp_dir().join("ktg-report-test");
        let mut t = Table::new("T", "x");
        t.columns(["1"]);
        t.row("r", ["2"]);
        let path = t.write_csv(&dir, "t").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "x,1\nr,2\n");
        fs::remove_file(path).ok();
    }
}

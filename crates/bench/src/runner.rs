//! Shared benchmark machinery.
//!
//! [`Workbench`] owns one instantiated dataset plus all three distance
//! oracles, and executes any of the paper's algorithm configurations
//! ([`Algo`]) over a query batch, reporting mean latency and aggregated
//! search stats. The algorithm names follow §VII-A exactly:
//! `<search>-<index>`, e.g. `KTG-VKC-DEG-NLRNL`.

use crate::params::Params;
use ktg_common::{parallel, Result};
use ktg_core::dktg::{self, DktgQuery};
use ktg_core::{bb, AttributedGraph, KtgQuery, SearchStats};
use ktg_datasets::{DatasetProfile, QueryGen};
use ktg_index::{BfsOracle, DistanceOracle, NlIndex, NlrnlIndex};
use ktg_keywords::QueryKeywords;
use std::time::{Duration, Instant};

/// The algorithm configurations compared in the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// KTG-QKC-NLRNL — static QKC ordering, NLRNL index (Fig 3 only).
    KtgQkcNlrnl,
    /// KTG-VKC-NL — VKC ordering, NL index.
    KtgVkcNl,
    /// KTG-VKC-NLRNL — VKC ordering, NLRNL index.
    KtgVkcNlrnl,
    /// KTG-VKC-DEG-NLRNL — VKC + degree ordering, NLRNL index.
    KtgVkcDegNlrnl,
    /// DKTG-Greedy (internally KTG-VKC-DEG-NLRNL with N = 1 per round).
    DktgGreedy,
    /// KTG-VKC-DEG with the index-free BFS oracle (ablation).
    KtgVkcDegBfs,
}

impl Algo {
    /// The paper's lineup for Figure 3 (the only figure including QKC).
    pub const FIG3: [Algo; 5] = [
        Algo::KtgQkcNlrnl,
        Algo::KtgVkcNl,
        Algo::KtgVkcNlrnl,
        Algo::KtgVkcDegNlrnl,
        Algo::DktgGreedy,
    ];

    /// The lineup for Figures 4–6 (QKC dropped, as in the paper).
    pub const FIG456: [Algo; 4] =
        [Algo::KtgVkcNl, Algo::KtgVkcNlrnl, Algo::KtgVkcDegNlrnl, Algo::DktgGreedy];

    /// Display name matching §VII-A.
    pub fn name(self) -> &'static str {
        match self {
            Algo::KtgQkcNlrnl => "KTG-QKC-NLRNL",
            Algo::KtgVkcNl => "KTG-VKC-NL",
            Algo::KtgVkcNlrnl => "KTG-VKC-NLRNL",
            Algo::KtgVkcDegNlrnl => "KTG-VKC-DEG-NLRNL",
            Algo::DktgGreedy => "DKTG-Greedy",
            Algo::KtgVkcDegBfs => "KTG-VKC-DEG-BFS",
        }
    }
}

/// Aggregate of one (algorithm, configuration) measurement.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Mean per-query latency over the batch.
    pub mean_latency: Duration,
    /// Aggregated search counters.
    pub stats: SearchStats,
    /// Queries that returned at least one group.
    pub solved: usize,
    /// Batch size.
    pub queries: usize,
}

/// One dataset instance plus its three distance oracles.
pub struct Workbench<'g> {
    net: &'g AttributedGraph,
    bfs: BfsOracle<'g, ktg_graph::GraphStore>,
    nl: NlIndex<'g, ktg_graph::GraphStore>,
    nlrnl: NlrnlIndex,
}

impl<'g> Workbench<'g> {
    /// Builds all oracles for `net` (NL and NLRNL construction is
    /// parallelized internally).
    pub fn new(net: &'g AttributedGraph) -> Self {
        Workbench {
            bfs: BfsOracle::new(net.graph()),
            nl: NlIndex::build(net.graph()),
            nlrnl: NlrnlIndex::build(net.graph()),
            net,
        }
    }

    /// The underlying network.
    pub fn net(&self) -> &AttributedGraph {
        self.net
    }

    /// The NL index (for Figure 9 space/build reporting).
    pub fn nl(&self) -> &NlIndex<'g, ktg_graph::GraphStore> {
        &self.nl
    }

    /// The NLRNL index (for Figure 9 space/build reporting).
    pub fn nlrnl(&self) -> &NlrnlIndex {
        &self.nlrnl
    }

    /// Runs one algorithm over one query, returning elapsed time, stats,
    /// and whether any group was found.
    ///
    /// # Errors
    /// Propagates invalid `(p, k, n, gamma)` parameter combinations.
    pub fn run_query(
        &self,
        algo: Algo,
        keywords: &QueryKeywords,
        params: &Params,
        node_budget: Option<u64>,
    ) -> Result<(Duration, SearchStats, bool)> {
        let query = KtgQuery::new(keywords.clone(), params.p, params.k, params.n)?;
        Ok(match algo {
            Algo::KtgQkcNlrnl => self.run_bb(&query, &self.nlrnl, bb::BbOptions::qkc(), node_budget),
            Algo::KtgVkcNl => self.run_bb(&query, &self.nl, bb::BbOptions::vkc(), node_budget),
            Algo::KtgVkcNlrnl => self.run_bb(&query, &self.nlrnl, bb::BbOptions::vkc(), node_budget),
            Algo::KtgVkcDegNlrnl => {
                self.run_bb(&query, &self.nlrnl, bb::BbOptions::vkc_deg(), node_budget)
            }
            Algo::KtgVkcDegBfs => {
                self.run_bb(&query, &self.bfs, bb::BbOptions::vkc_deg(), node_budget)
            }
            Algo::DktgGreedy => {
                let dq = DktgQuery::new(query, params.gamma)?;
                let inner = bb::BbOptions { node_budget, ..bb::BbOptions::vkc_deg() };
                let start = Instant::now();
                let out = dktg::solve_with_options(self.net, &dq, &self.nlrnl, &inner);
                (start.elapsed(), out.stats, !out.groups.is_empty())
            }
        })
    }

    fn run_bb(
        &self,
        query: &KtgQuery,
        oracle: &impl DistanceOracle,
        mut opts: bb::BbOptions,
        node_budget: Option<u64>,
    ) -> (Duration, SearchStats, bool) {
        opts.node_budget = node_budget;
        let start = Instant::now();
        let out = bb::solve(self.net, query, oracle, &opts);
        (start.elapsed(), out.stats, !out.groups.is_empty())
    }

    /// Runs a batch across all cores (throughput mode): per-query latencies
    /// are not meaningful under contention, so this reports total wall
    /// time and queries/second instead. The paper measures sequential mean
    /// latency; this mode exists for workload-replay use cases.
    ///
    /// An empty batch is a well-defined no-op: zero elapsed, zero qps.
    pub fn run_batch_parallel(
        &self,
        algo: Algo,
        batch: &[QueryKeywords],
        params: &Params,
        node_budget: Option<u64>,
    ) -> (Duration, f64) {
        if batch.is_empty() {
            return (Duration::ZERO, 0.0);
        }
        let chunk = parallel::chunk_size(batch.len(), parallel::worker_count());
        let start = Instant::now();
        parallel::scope_join(batch.chunks(chunk).map(|queries| {
            move || {
                for q in queries {
                    let _ = self.run_query(algo, q, params, node_budget);
                }
            }
        }));
        let elapsed = start.elapsed();
        // elapsed can quantize to zero on a coarse clock; report 0 qps
        // rather than a division artifact.
        let secs = elapsed.as_secs_f64();
        let qps = if secs > 0.0 { batch.len() as f64 / secs } else { 0.0 };
        (elapsed, qps)
    }

    /// Runs a whole batch, returning the aggregate measurement. An empty
    /// batch yields the all-zero [`Measurement`] (not a division by zero).
    ///
    /// # Errors
    /// Propagates the first [`Workbench::run_query`] failure.
    pub fn run_batch(
        &self,
        algo: Algo,
        batch: &[QueryKeywords],
        params: &Params,
        node_budget: Option<u64>,
    ) -> Result<Measurement> {
        if batch.is_empty() {
            return Ok(Measurement {
                mean_latency: Duration::ZERO,
                stats: SearchStats::default(),
                solved: 0,
                queries: 0,
            });
        }
        let mut total = Duration::ZERO;
        let mut stats = SearchStats::default();
        let mut solved = 0;
        for q in batch {
            let (elapsed, s, found) = self.run_query(algo, q, params, node_budget)?;
            total += elapsed;
            stats.merge(&s);
            solved += usize::from(found);
        }
        Ok(Measurement {
            mean_latency: total / batch.len() as u32,
            stats,
            solved,
            queries: batch.len(),
        })
    }
}

/// Instantiates a profile and a deterministic query batch for it.
///
/// # Errors
/// Propagates query-generation failures (e.g. `wq` exceeding the
/// instantiated vocabulary).
pub fn dataset_with_queries(
    profile: DatasetProfile,
    scale: usize,
    seed: u64,
    queries: usize,
    wq: usize,
) -> Result<(AttributedGraph, Vec<QueryKeywords>)> {
    let net = profile.instantiate(scale, seed);
    let batch = QueryGen::new(&net, seed ^ 0xBEEF).batch(queries, wq)?;
    Ok((net, batch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DEFAULTS;

    #[test]
    fn all_algorithms_run_on_scaled_dataset() {
        let (net, batch) =
            dataset_with_queries(DatasetProfile::Brightkite, 400, 3, 3, DEFAULTS.wq).unwrap();
        let bench = Workbench::new(&net);
        for algo in Algo::FIG3 {
            let m = bench.run_batch(algo, &batch, &DEFAULTS, Some(2_000_000)).unwrap();
            assert_eq!(m.queries, 3, "{}", algo.name());
            assert!(m.stats.nodes > 0, "{}", algo.name());
        }
    }

    #[test]
    fn index_variants_agree_on_results() {
        let (net, batch) =
            dataset_with_queries(DatasetProfile::Gowalla, 400, 11, 5, DEFAULTS.wq).unwrap();
        let bench = Workbench::new(&net);
        for q in &batch {
            let query = KtgQuery::new(q.clone(), DEFAULTS.p, DEFAULTS.k, DEFAULTS.n).unwrap();
            let a = bb::solve(&net, &query, &bench.nl, &bb::BbOptions::vkc());
            let b = bb::solve(&net, &query, &bench.nlrnl, &bb::BbOptions::vkc());
            let c = bb::solve(&net, &query, &bench.bfs, &bb::BbOptions::vkc());
            assert_eq!(a.groups, b.groups);
            assert_eq!(b.groups, c.groups);
        }
    }

    #[test]
    fn parallel_batch_runs_all_queries() {
        let (net, batch) =
            dataset_with_queries(DatasetProfile::Brightkite, 800, 3, 6, DEFAULTS.wq).unwrap();
        let bench = Workbench::new(&net);
        let (elapsed, qps) =
            bench.run_batch_parallel(Algo::KtgVkcDegNlrnl, &batch, &DEFAULTS, Some(100_000));
        assert!(elapsed.as_nanos() > 0);
        assert!(qps > 0.0);
    }

    #[test]
    fn empty_batch_is_a_zero_measurement() {
        let (net, _) =
            dataset_with_queries(DatasetProfile::Brightkite, 800, 3, 0, DEFAULTS.wq).unwrap();
        let bench = Workbench::new(&net);
        let m = bench.run_batch(Algo::KtgVkcDegNlrnl, &[], &DEFAULTS, None).unwrap();
        assert_eq!(m.queries, 0);
        assert_eq!(m.solved, 0);
        assert_eq!(m.mean_latency, Duration::ZERO);
        assert_eq!(m.stats.nodes, 0);
        let (elapsed, qps) = bench.run_batch_parallel(Algo::KtgVkcDegNlrnl, &[], &DEFAULTS, None);
        assert_eq!(elapsed, Duration::ZERO);
        assert_eq!(qps, 0.0);
    }

    #[test]
    fn algo_names_match_paper() {
        assert_eq!(Algo::KtgVkcDegNlrnl.name(), "KTG-VKC-DEG-NLRNL");
        assert_eq!(Algo::FIG3.len(), 5);
        assert_eq!(Algo::FIG456.len(), 4);
    }
}

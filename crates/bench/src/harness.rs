//! Minimal timing harness — the workspace's offline `criterion`
//! replacement.
//!
//! Each figure bench is a plain `fn main()` binary (`harness = false`)
//! driving a [`BenchGroup`]: warm up for a fixed wall-time, take `N`
//! timed samples of the closure, and report min / mean / median / p95.
//! Every measurement is emitted as one JSON line on stdout and appended
//! to `bench_results/<group>.jsonl`, so figure postprocessing needs no
//! bench-framework parser.
//!
//! Modes, mirroring how cargo drives `harness = false` targets:
//!
//! * `cargo bench` passes `--bench` — full warmup + sampling.
//! * `cargo test` passes `--test` — each closure runs **once**, no
//!   warmup, nothing written to disk: benches double as end-to-end smoke
//!   tests without slowing the suite down.
//! * `KTG_BENCH_FAST=1` forces the quick mode regardless of arguments.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One benchmark's aggregated timing statistics.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Group name (e.g. `fig3_group_size`).
    pub group: String,
    /// Series name (e.g. the algorithm).
    pub bench: String,
    /// Swept parameter value, stringified.
    pub param: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Logical operations (e.g. queries) performed per sample; 1 for
    /// plain [`BenchGroup::bench`] calls.
    pub items: usize,
    /// Fastest sample.
    pub min: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (p50).
    pub median: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// Slowest sample.
    pub max: Duration,
}

impl Summary {
    /// Best observed throughput in operations per second: `items`
    /// divided by the **fastest** sample. Sub-nanosecond samples are
    /// saturated to 1 ns instead of dividing by zero, so trivially fast
    /// closures report a huge-but-finite rate rather than panicking.
    pub fn ops_per_sec(&self) -> f64 {
        let nanos = (self.min.as_nanos() as u64).max(1);
        self.items as f64 * 1e9 / nanos as f64
    }

    /// The measurement as one JSON object on a single line.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"group\":\"{}\",\"bench\":\"{}\",\"param\":\"{}\",\"samples\":{},\
             \"items\":{},\"ops_per_sec\":{:.3},\
             \"min_ns\":{},\"mean_ns\":{},\"median_ns\":{},\"p95_ns\":{},\"max_ns\":{}}}",
            escape(&self.group),
            escape(&self.bench),
            escape(&self.param),
            self.samples,
            self.items,
            self.ops_per_sec(),
            self.min.as_nanos(),
            self.mean.as_nanos(),
            self.median.as_nanos(),
            self.p95.as_nanos(),
            self.max.as_nanos(),
        )
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A named group of benchmarks sharing warmup/sample configuration.
pub struct BenchGroup {
    group: String,
    warmup: Duration,
    samples: usize,
    quick: bool,
    write_quick: bool,
    out_dir: Option<PathBuf>,
}

impl BenchGroup {
    /// Creates a group with the defaults (300 ms warmup, 10 samples,
    /// results under `bench_results/`), honoring cargo's `--test` flag
    /// and `KTG_BENCH_FAST` for the quick single-run mode.
    pub fn new(group: impl Into<String>) -> Self {
        let quick = std::env::args().any(|a| a == "--test")
            || std::env::var("KTG_BENCH_FAST").is_ok_and(|v| v != "0");
        BenchGroup {
            group: group.into(),
            warmup: Duration::from_millis(300),
            samples: 10,
            quick,
            write_quick: false,
            out_dir: Some(PathBuf::from(
                std::env::var("KTG_BENCH_OUT").unwrap_or_else(|_| "bench_results".into()),
            )),
        }
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Sets the wall-time spent warming up before sampling.
    pub fn warm_up_time(&mut self, warmup: Duration) -> &mut Self {
        self.warmup = warmup;
        self
    }

    /// Disables the JSON-lines file sink (stdout only).
    pub fn no_output_file(&mut self) -> &mut Self {
        self.out_dir = None;
        self
    }

    /// Keeps the JSON-lines file sink active even in quick mode.
    ///
    /// Benches whose smoke run seeds the perf trajectory (e.g. the CI
    /// qps smoke) opt in; figure benches keep the default of writing
    /// only full runs so one-shot smoke numbers never pollute plots.
    pub fn write_in_quick_mode(&mut self) -> &mut Self {
        self.write_quick = true;
        self
    }

    /// Times `f`, prints the JSON line, appends it to the group's
    /// `.jsonl` file, and returns the summary.
    ///
    /// The closure's return value is passed through
    /// [`std::hint::black_box`] so the optimizer cannot delete the work.
    pub fn bench<R>(
        &mut self,
        bench: impl Into<String>,
        param: impl Display,
        f: impl FnMut() -> R,
    ) -> Summary {
        self.bench_items(bench, param, 1, f)
    }

    /// Like [`BenchGroup::bench`], for closures that perform `items`
    /// logical operations per invocation (e.g. a whole query workload):
    /// the summary carries `items` so [`Summary::ops_per_sec`] reports
    /// per-operation throughput instead of per-batch.
    pub fn bench_items<R>(
        &mut self,
        bench: impl Into<String>,
        param: impl Display,
        items: usize,
        mut f: impl FnMut() -> R,
    ) -> Summary {
        let (samples, warmup) =
            if self.quick { (1, Duration::ZERO) } else { (self.samples, self.warmup) };

        let warm_start = Instant::now();
        while warm_start.elapsed() < warmup {
            std::hint::black_box(f());
        }

        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();

        let total: Duration = times.iter().sum();
        let summary = Summary {
            group: self.group.clone(),
            bench: bench.into(),
            param: param.to_string(),
            samples,
            items: items.max(1),
            min: times[0],
            mean: total / samples as u32,
            median: times[samples / 2],
            p95: times[percentile_index(samples, 0.95)],
            max: times[samples - 1],
        };

        let line = summary.to_json_line();
        println!("{line}");
        if !self.quick || self.write_quick {
            if let Some(dir) = &self.out_dir {
                if let Err(e) = append_line(dir, &self.group, &line) {
                    eprintln!("warning: could not write {}/{}.jsonl: {e}", dir.display(), self.group);
                }
            }
        }
        summary
    }

    /// Whether the harness is in the quick (single-run) mode.
    pub fn is_quick(&self) -> bool {
        self.quick
    }
}

/// Index of the `q`-quantile in a sorted sample array of length `n`
/// (nearest-rank method).
fn percentile_index(n: usize, q: f64) -> usize {
    ((n as f64 * q).ceil() as usize).clamp(1, n) - 1
}

fn append_line(dir: &PathBuf, group: &str, line: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut file =
        OpenOptions::new().create(true).append(true).open(dir.join(format!("{group}.jsonl")))?;
    writeln!(file, "{line}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_group(name: &str) -> BenchGroup {
        let mut g = BenchGroup::new(name);
        g.no_output_file();
        g
    }

    #[test]
    fn summary_statistics_are_ordered() {
        let mut g = quiet_group("test_group");
        g.sample_size(20).warm_up_time(Duration::ZERO);
        g.quick = false;
        let mut x = 0u64;
        let s = g.bench("spin", 1, || {
            for i in 0..10_000u64 {
                x = x.wrapping_add(i * i);
            }
            x
        });
        assert_eq!(s.samples, 20);
        assert!(s.min <= s.median && s.median <= s.p95 && s.p95 <= s.max);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!(s.min > Duration::ZERO, "10k multiplies cannot take zero time");
    }

    #[test]
    fn quick_mode_runs_exactly_once() {
        let mut g = quiet_group("test_quick");
        g.sample_size(50).warm_up_time(Duration::from_secs(60));
        g.quick = true; // a 60 s warmup would hang if quick mode ignored it
        let mut runs = 0;
        let s = g.bench("once", "x", || runs += 1);
        assert_eq!(runs, 1);
        assert_eq!(s.samples, 1);
    }

    #[test]
    fn json_line_shape_and_escaping() {
        let s = Summary {
            group: "g".into(),
            bench: "na\"me".into(),
            param: "7".into(),
            samples: 3,
            items: 1,
            min: Duration::from_nanos(10),
            mean: Duration::from_nanos(20),
            median: Duration::from_nanos(15),
            p95: Duration::from_nanos(30),
            max: Duration::from_nanos(30),
        };
        let line = s.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert!(line.contains("\"bench\":\"na\\\"me\""));
        assert!(line.contains("\"median_ns\":15"));
        assert!(line.contains("\"p95_ns\":30"));
        assert!(line.contains("\"items\":1"));
        assert!(line.contains("\"ops_per_sec\":"));
    }

    #[test]
    fn ops_per_sec_counts_items_and_saturates_zero_durations() {
        let mut s = Summary {
            group: "g".into(),
            bench: "b".into(),
            param: "1".into(),
            samples: 1,
            items: 8,
            min: Duration::from_micros(2),
            mean: Duration::from_micros(2),
            median: Duration::from_micros(2),
            p95: Duration::from_micros(2),
            max: Duration::from_micros(2),
        };
        // 8 items in 2 µs → 4 M ops/s.
        assert!((s.ops_per_sec() - 4_000_000.0).abs() < 1e-6);
        // A zero-duration sample saturates to 1 ns instead of dividing
        // by zero: finite, huge, and not a panic.
        s.min = Duration::ZERO;
        assert!(s.ops_per_sec().is_finite());
        assert!((s.ops_per_sec() - 8e9).abs() < 1e-3);
    }

    #[test]
    fn bench_items_records_item_count() {
        let mut g = quiet_group("test_items");
        g.quick = true;
        let s = g.bench_items("batch", 4, 17, || 0);
        assert_eq!(s.items, 17);
        assert!(s.ops_per_sec().is_finite());
        // Plain bench() defaults to one item per sample.
        let s1 = g.bench("single", 4, || 0);
        assert_eq!(s1.items, 1);
    }

    #[test]
    fn write_in_quick_mode_keeps_sink_active() {
        let dir = std::env::temp_dir().join("ktg-harness-quick-sink");
        let _ = std::fs::remove_dir_all(&dir);
        let mut g = BenchGroup::new("quicksink");
        g.quick = true;
        g.out_dir = Some(dir.clone());
        g.bench("skipped", 1, || 0); // default: quick mode writes nothing
        assert!(!dir.join("quicksink.jsonl").exists());
        g.write_in_quick_mode();
        g.bench("written", 1, || 0);
        let contents = std::fs::read_to_string(dir.join("quicksink.jsonl")).unwrap();
        assert_eq!(contents.lines().count(), 1);
        assert!(contents.contains("\"bench\":\"written\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile_index(10, 0.95), 9);
        assert_eq!(percentile_index(20, 0.95), 18);
        assert_eq!(percentile_index(1, 0.95), 0);
        assert_eq!(percentile_index(100, 0.5), 49);
    }

    #[test]
    fn jsonl_file_sink_appends() {
        let dir = std::env::temp_dir().join("ktg-harness-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut g = BenchGroup::new("sinkcheck");
        g.quick = false;
        g.sample_size(2).warm_up_time(Duration::ZERO);
        g.out_dir = Some(dir.clone());
        g.bench("a", 1, || 1 + 1);
        g.bench("a", 2, || 1 + 1);
        let contents = std::fs::read_to_string(dir.join("sinkcheck.jsonl")).unwrap();
        assert_eq!(contents.lines().count(), 2);
        assert!(contents.lines().all(|l| l.contains("\"group\":\"sinkcheck\"")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

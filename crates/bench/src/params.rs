//! Table I — parameter ranges and default values.
//!
//! > | Parameters                  | Range            |
//! > |-----------------------------|------------------|
//! > | # of group size (p)         | 3, 4, 5, 6, 7    |
//! > | # of social constraint (k)  | 1, 2, 3, 4       |
//! > | Query keyword size (|W_Q|)  | 4, 5, 6, 7, 8    |
//! > | N value                     | 3, 5, 7, 9, 11   |
//!
//! The bold (default) markers are not legible in our copy of the paper;
//! the conventional midpoints are adopted and recorded here (DESIGN.md §5):
//! `p = 3`, `k = 2`, `|W_Q| = 6`, `N = 5`, `γ = 0.5`.

/// One experiment configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// Group size `p`.
    pub p: usize,
    /// Social/tenuity constraint `k`.
    pub k: u32,
    /// Query keyword set size `|W_Q|`.
    pub wq: usize,
    /// Result count `N`.
    pub n: usize,
    /// DKTG score weight `γ`.
    pub gamma: f64,
}

/// The default configuration (Table I midpoints).
pub const DEFAULTS: Params = Params { p: 3, k: 2, wq: 6, n: 5, gamma: 0.5 };

/// Table I sweep range for `p`.
pub const P_RANGE: [usize; 5] = [3, 4, 5, 6, 7];
/// Table I sweep range for `k`.
pub const K_RANGE: [u32; 4] = [1, 2, 3, 4];
/// Table I sweep range for `|W_Q|`.
pub const WQ_RANGE: [usize; 5] = [4, 5, 6, 7, 8];
/// Table I sweep range for `N`.
pub const N_RANGE: [usize; 5] = [3, 5, 7, 9, 11];

impl Params {
    /// Derives a configuration with a different `p`.
    pub fn with_p(self, p: usize) -> Self {
        Params { p, ..self }
    }
    /// Derives a configuration with a different `k`.
    pub fn with_k(self, k: u32) -> Self {
        Params { k, ..self }
    }
    /// Derives a configuration with a different `|W_Q|`.
    pub fn with_wq(self, wq: usize) -> Self {
        Params { wq, ..self }
    }
    /// Derives a configuration with a different `N`.
    pub fn with_n(self, n: usize) -> Self {
        Params { n, ..self }
    }
}

/// Reads the dataset scale divisor: `KTG_SCALE` env var, else `default`.
pub fn scale_from_env(default: usize) -> usize {
    std::env::var("KTG_SCALE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(default)
}

/// Reads the per-configuration query count: `KTG_QUERIES`, else `default`.
pub fn queries_from_env(default: usize) -> usize {
    std::env::var("KTG_QUERIES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&q| q >= 1)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sit_inside_ranges() {
        assert!(P_RANGE.contains(&DEFAULTS.p));
        assert!(K_RANGE.contains(&DEFAULTS.k));
        assert!(WQ_RANGE.contains(&DEFAULTS.wq));
        assert!(N_RANGE.contains(&DEFAULTS.n));
    }

    #[test]
    fn with_helpers_change_one_field() {
        let p = DEFAULTS.with_p(7);
        assert_eq!(p.p, 7);
        assert_eq!(p.k, DEFAULTS.k);
        let k = DEFAULTS.with_k(4).with_wq(8).with_n(11);
        assert_eq!((k.k, k.wq, k.n), (4, 8, 11));
    }

    #[test]
    fn env_fallbacks() {
        // Only exercise the fallback path: the env vars are not set in
        // the test environment.
        assert_eq!(scale_from_env(100), 100);
        assert_eq!(queries_from_env(20), 20);
    }
}

//! # `ktg-bench`
//!
//! Benchmark harness reproducing the paper's evaluation (§VII): every
//! figure has a bench binary (`benches/fig*.rs`) on the hand-rolled
//! timing harness in [`harness`] (warmup + fixed sample count +
//! min/mean/median/p95, one JSON line per measurement — the offline
//! `criterion` replacement), and a sweep command in the `experiments`
//! binary that prints the same rows/series the paper plots. Table I's
//! parameter grid lives in [`params`]; the shared machinery (dataset
//! instantiation, index construction, per-algorithm query execution,
//! latency aggregation) in [`runner`]; plain-text/CSV emission in
//! [`report`].
//!
//! Scale: the paper ran full-size graphs on a 120 GB testbed. The harness
//! defaults to `1/100` scale (override with `--scale` or `KTG_SCALE`),
//! which preserves every comparative shape — see DESIGN.md §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod params;
pub mod report;
pub mod runner;

pub use harness::{BenchGroup, Summary};
pub use params::{Params, DEFAULTS};
pub use runner::{Algo, Workbench};

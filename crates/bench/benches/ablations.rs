//! Ablation benches beyond the paper's figures (DESIGN.md §5):
//!
//! * keyword pruning on/off and k-line filtering on/off;
//! * degree tiebreak direction (ascending — the paper's rationale — vs
//!   descending — the paper's literal phrasing);
//! * distance oracle choice (BFS vs NL vs NLRNL) under one algorithm;
//! * brute force vs branch-and-bound on a small instance;
//! * community structure (planted-partition vs flat Erdős–Rényi);
//! * DKTG exact subset optimum vs the greedy heuristic.

use ktg_bench::harness::BenchGroup;
use ktg_bench::params::DEFAULTS;
use ktg_bench::runner::{dataset_with_queries, Algo, Workbench};
use ktg_core::{bb, brute, KtgQuery, MemberOrdering};
use ktg_datasets::DatasetProfile;
use ktg_index::NlrnlIndex;
use std::time::Duration;

fn pruning_rules() {
    let (net, batch) = dataset_with_queries(DatasetProfile::Gowalla, 100, 42, 2, DEFAULTS.wq).expect("bench workload");
    let index = NlrnlIndex::build(net.graph());
    let mut group = BenchGroup::new("ablation_pruning");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    for (name, kp, kf) in [
        ("both", true, true),
        ("no-keyword-pruning", false, true),
        ("no-kline-filtering", true, false),
        ("neither", false, false),
    ] {
        let opts = bb::BbOptions {
            keyword_pruning: kp,
            kline_filtering: kf,
            node_budget: Some(50_000),
            ..bb::BbOptions::vkc_deg()
        };
        group.bench("vkc-deg", name, || {
            for q in &batch {
                let query =
                    KtgQuery::new(q.clone(), DEFAULTS.p, DEFAULTS.k, DEFAULTS.n).expect("valid");
                bb::solve(&net, &query, &index, &opts);
            }
        });
    }
}

fn degree_direction() {
    let (net, batch) = dataset_with_queries(DatasetProfile::Gowalla, 100, 42, 2, DEFAULTS.wq).expect("bench workload");
    let index = NlrnlIndex::build(net.graph());
    let mut group = BenchGroup::new("ablation_degree_order");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    for (name, ordering) in [
        ("degree-ascending", MemberOrdering::VkcDeg),
        ("degree-descending", MemberOrdering::VkcDegDesc),
        ("no-tiebreak", MemberOrdering::Vkc),
    ] {
        let opts = bb::BbOptions {
            node_budget: Some(50_000),
            ..bb::BbOptions::vkc().with_ordering(ordering)
        };
        group.bench(name, "", || {
            for q in &batch {
                let query =
                    KtgQuery::new(q.clone(), DEFAULTS.p, DEFAULTS.k, DEFAULTS.n).expect("valid");
                bb::solve(&net, &query, &index, &opts);
            }
        });
    }
}

fn oracle_choice() {
    let (net, batch) = dataset_with_queries(DatasetProfile::Gowalla, 100, 42, 2, DEFAULTS.wq).expect("bench workload");
    let bench = Workbench::new(&net);
    let mut group = BenchGroup::new("ablation_oracles");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    for algo in [Algo::KtgVkcDegBfs, Algo::KtgVkcNl, Algo::KtgVkcDegNlrnl] {
        group.bench(algo.name(), "", || bench.run_batch(algo, &batch, &DEFAULTS, Some(50_000)).expect("bench query"));
    }
    // PLL (2-hop labels): the modern baseline the paper cites as
    // inspiration but never measures. Run the same search over it.
    let pll = ktg_index::PllIndex::build(net.graph());
    group.bench("KTG-VKC-DEG-PLL", "", || {
        for q in &batch {
            let query =
                KtgQuery::new(q.clone(), DEFAULTS.p, DEFAULTS.k, DEFAULTS.n).expect("valid");
            let opts = bb::BbOptions {
                node_budget: Some(50_000),
                ..bb::BbOptions::vkc_deg()
            };
            bb::solve(&net, &query, &pll, &opts);
        }
    });
}

fn brute_vs_bb() {
    // Brute force is O(|V|^p): keep the instance tiny.
    let (net, batch) = dataset_with_queries(DatasetProfile::Brightkite, 800, 42, 1, 4).expect("bench workload");
    let index = NlrnlIndex::build(net.graph());
    let query = KtgQuery::new(batch[0].clone(), 3, 1, 2).expect("valid");
    let mut group = BenchGroup::new("ablation_brute_vs_bb");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    group.bench("brute-force", "", || brute::solve(&net, &query, &index));
    group.bench("ktg-vkc-deg", "", || {
        bb::solve(&net, &query, &index, &bb::BbOptions::vkc_deg())
    });
}

fn community_structure() {
    // Does community structure (high modularity) change the algorithm
    // picture relative to an equally dense unstructured graph? Planted
    // partitions make intra-community pairs near-universally k-line for
    // k >= 2, pushing feasible groups across communities.
    use ktg_core::AttributedGraph;
    use ktg_datasets::sbm::{planted_partition, SbmParams};

    let n = 600;
    let params = SbmParams { n, blocks: 6, p_in: 0.08, p_out: 0.004 };
    let sbm_graph = planted_partition(&params, 42);
    let flat_graph = ktg_datasets::gen::erdos_renyi(n, sbm_graph.num_edges(), 42);
    let (vocab_a, kw_a) = ktg_datasets::keywords::assign_zipf(
        n,
        &ktg_datasets::keywords::KeywordModel::default(),
        7,
    );
    let (vocab_b, kw_b) = ktg_datasets::keywords::assign_zipf(
        n,
        &ktg_datasets::keywords::KeywordModel::default(),
        7,
    );
    let nets = [
        ("sbm", AttributedGraph::new(sbm_graph, vocab_a, kw_a)),
        ("flat", AttributedGraph::new(flat_graph, vocab_b, kw_b)),
    ];

    let mut group = BenchGroup::new("ablation_community_structure");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    for (name, net) in &nets {
        let index = NlrnlIndex::build(net.graph());
        let batch = ktg_datasets::QueryGen::new(net, 5).batch(2, DEFAULTS.wq).expect("bench workload");
        group.bench("vkc-deg", name, || {
            for q in &batch {
                let query =
                    KtgQuery::new(q.clone(), DEFAULTS.p, DEFAULTS.k, DEFAULTS.n).expect("valid");
                let opts = bb::BbOptions {
                    node_budget: Some(50_000),
                    ..bb::BbOptions::vkc_deg()
                };
                bb::solve(net, &query, &index, &opts);
            }
        });
    }
}

fn dktg_exact_vs_greedy() {
    // Quality-vs-cost of DKTG-Greedy against the exact subset optimum on
    // a small instance where exact search is tractable.
    use ktg_core::dktg::{self, DktgQuery};
    use ktg_core::dktg_exact::{self, ExactLimits};

    let net = ktg_core::fixtures::figure1();
    let base = KtgQuery::new(
        net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).expect("fixture terms"),
        3,
        1,
        2,
    )
    .expect("valid");
    let query = DktgQuery::new(base, 0.5).expect("gamma");
    let oracle = NlrnlIndex::build(net.graph());

    let mut group = BenchGroup::new("ablation_dktg_exact_vs_greedy");
    group.sample_size(20).warm_up_time(Duration::from_millis(500));
    group.bench("greedy", "", || dktg::solve(&net, &query, &oracle));
    group.bench("exact", "", || {
        dktg_exact::solve(&net, &query, &oracle, &ExactLimits::default()).expect("tractable")
    });
}

fn main() {
    pruning_rules();
    degree_direction();
    oracle_choice();
    brute_vs_bb();
    community_structure();
    dktg_exact_vs_greedy();
}

//! Ablation benches beyond the paper's figures (DESIGN.md §5):
//!
//! * keyword pruning on/off and k-line filtering on/off;
//! * degree tiebreak direction (ascending — the paper's rationale — vs
//!   descending — the paper's literal phrasing);
//! * distance oracle choice (BFS vs NL vs NLRNL) under one algorithm;
//! * brute force vs branch-and-bound on a small instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktg_bench::params::DEFAULTS;
use ktg_bench::runner::{dataset_with_queries, Algo, Workbench};
use ktg_core::{bb, brute, KtgQuery, MemberOrdering};
use ktg_datasets::DatasetProfile;
use ktg_index::NlrnlIndex;

fn pruning_rules(c: &mut Criterion) {
    let (net, batch) = dataset_with_queries(DatasetProfile::Gowalla, 100, 42, 2, DEFAULTS.wq);
    let index = NlrnlIndex::build(net.graph());
    let mut group = c.benchmark_group("ablation_pruning");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, kp, kf) in [
        ("both", true, true),
        ("no-keyword-pruning", false, true),
        ("no-kline-filtering", true, false),
        ("neither", false, false),
    ] {
        let opts = bb::BbOptions {
            keyword_pruning: kp,
            kline_filtering: kf,
            node_budget: Some(50_000),
            ..bb::BbOptions::vkc_deg()
        };
        group.bench_function(BenchmarkId::new("vkc-deg", name), |b| {
            b.iter(|| {
                for q in &batch {
                    let query = KtgQuery::new(q.clone(), DEFAULTS.p, DEFAULTS.k, DEFAULTS.n)
                        .expect("valid");
                    bb::solve(&net, &query, &index, &opts);
                }
            })
        });
    }
    group.finish();
}

fn degree_direction(c: &mut Criterion) {
    let (net, batch) = dataset_with_queries(DatasetProfile::Gowalla, 100, 42, 2, DEFAULTS.wq);
    let index = NlrnlIndex::build(net.graph());
    let mut group = c.benchmark_group("ablation_degree_order");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, ordering) in [
        ("degree-ascending", MemberOrdering::VkcDeg),
        ("degree-descending", MemberOrdering::VkcDegDesc),
        ("no-tiebreak", MemberOrdering::Vkc),
    ] {
        let opts = bb::BbOptions {
            node_budget: Some(50_000),
            ..bb::BbOptions::vkc().with_ordering(ordering)
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                for q in &batch {
                    let query = KtgQuery::new(q.clone(), DEFAULTS.p, DEFAULTS.k, DEFAULTS.n)
                        .expect("valid");
                    bb::solve(&net, &query, &index, &opts);
                }
            })
        });
    }
    group.finish();
}

fn oracle_choice(c: &mut Criterion) {
    let (net, batch) = dataset_with_queries(DatasetProfile::Gowalla, 100, 42, 2, DEFAULTS.wq);
    let bench = Workbench::new(&net);
    let mut group = c.benchmark_group("ablation_oracles");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for algo in [Algo::KtgVkcDegBfs, Algo::KtgVkcNl, Algo::KtgVkcDegNlrnl] {
        group.bench_function(algo.name(), |b| {
            b.iter(|| bench.run_batch(algo, &batch, &DEFAULTS, Some(50_000)))
        });
    }
    // PLL (2-hop labels): the modern baseline the paper cites as
    // inspiration but never measures. Run the same search over it.
    let pll = ktg_index::PllIndex::build(net.graph());
    group.bench_function("KTG-VKC-DEG-PLL", |b| {
        b.iter(|| {
            for q in &batch {
                let query = KtgQuery::new(q.clone(), DEFAULTS.p, DEFAULTS.k, DEFAULTS.n)
                    .expect("valid");
                let opts = bb::BbOptions {
                    node_budget: Some(50_000),
                    ..bb::BbOptions::vkc_deg()
                };
                bb::solve(&net, &query, &pll, &opts);
            }
        })
    });
    group.finish();
}

fn brute_vs_bb(c: &mut Criterion) {
    // Brute force is O(|V|^p): keep the instance tiny.
    let (net, batch) = dataset_with_queries(DatasetProfile::Brightkite, 800, 42, 1, 4);
    let index = NlrnlIndex::build(net.graph());
    let query = KtgQuery::new(batch[0].clone(), 3, 1, 2).expect("valid");
    let mut group = c.benchmark_group("ablation_brute_vs_bb");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("brute-force", |b| {
        b.iter(|| brute::solve(&net, &query, &index))
    });
    group.bench_function("ktg-vkc-deg", |b| {
        b.iter(|| bb::solve(&net, &query, &index, &bb::BbOptions::vkc_deg()))
    });
    group.finish();
}

fn community_structure(c: &mut Criterion) {
    // Does community structure (high modularity) change the algorithm
    // picture relative to an equally dense unstructured graph? Planted
    // partitions make intra-community pairs near-universally k-line for
    // k >= 2, pushing feasible groups across communities.
    use ktg_core::AttributedGraph;
    use ktg_datasets::sbm::{planted_partition, SbmParams};

    let n = 600;
    let params = SbmParams { n, blocks: 6, p_in: 0.08, p_out: 0.004 };
    let sbm_graph = planted_partition(&params, 42);
    let flat_graph = ktg_datasets::gen::erdos_renyi(n, sbm_graph.num_edges(), 42);
    let (vocab_a, kw_a) = ktg_datasets::keywords::assign_zipf(
        n,
        &ktg_datasets::keywords::KeywordModel::default(),
        7,
    );
    let (vocab_b, kw_b) = ktg_datasets::keywords::assign_zipf(
        n,
        &ktg_datasets::keywords::KeywordModel::default(),
        7,
    );
    let nets = [
        ("sbm", AttributedGraph::new(sbm_graph, vocab_a, kw_a)),
        ("flat", AttributedGraph::new(flat_graph, vocab_b, kw_b)),
    ];

    let mut group = c.benchmark_group("ablation_community_structure");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, net) in &nets {
        let index = NlrnlIndex::build(net.graph());
        let batch = ktg_datasets::QueryGen::new(net, 5).batch(2, DEFAULTS.wq);
        group.bench_function(BenchmarkId::new("vkc-deg", *name), |b| {
            b.iter(|| {
                for q in &batch {
                    let query =
                        KtgQuery::new(q.clone(), DEFAULTS.p, DEFAULTS.k, DEFAULTS.n).expect("valid");
                    let opts = bb::BbOptions {
                        node_budget: Some(50_000),
                        ..bb::BbOptions::vkc_deg()
                    };
                    bb::solve(net, &query, &index, &opts);
                }
            })
        });
    }
    group.finish();
}

fn dktg_exact_vs_greedy(c: &mut Criterion) {
    // Quality-vs-cost of DKTG-Greedy against the exact subset optimum on
    // a small instance where exact search is tractable.
    use ktg_core::dktg::{self, DktgQuery};
    use ktg_core::dktg_exact::{self, ExactLimits};

    let net = ktg_core::fixtures::figure1();
    let base = KtgQuery::new(
        net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).expect("fixture terms"),
        3,
        1,
        2,
    )
    .expect("valid");
    let query = DktgQuery::new(base, 0.5).expect("gamma");
    let oracle = NlrnlIndex::build(net.graph());

    let mut group = c.benchmark_group("ablation_dktg_exact_vs_greedy");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("greedy", |b| b.iter(|| dktg::solve(&net, &query, &oracle)));
    group.bench_function("exact", |b| {
        b.iter(|| dktg_exact::solve(&net, &query, &oracle, &ExactLimits::default()).expect("tractable"))
    });
    group.finish();
}

criterion_group!(
    benches,
    pruning_rules,
    degree_direction,
    oracle_choice,
    brute_vs_bb,
    community_structure,
    dktg_exact_vs_greedy
);
criterion_main!(benches);

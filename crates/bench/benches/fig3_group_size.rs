//! Figure 3 — latency vs group size `p` (Gowalla-profile dataset).
//!
//! Reproduces the paper's comparison of KTG-QKC-NLRNL, KTG-VKC-NL,
//! KTG-VKC-NLRNL, KTG-VKC-DEG-NLRNL, and DKTG-Greedy as `p` grows from 3
//! to 7. Expected shape (paper Fig 3): latency rises with `p`; VKC-DEG is
//! the fastest exact variant; QKC is the slowest; NLRNL beats NL.
//! Full sweeps over all four datasets: `cargo run --release -p ktg-bench
//! --bin experiments fig3`.

use ktg_bench::harness::BenchGroup;
use ktg_bench::params::{DEFAULTS, P_RANGE};
use ktg_bench::runner::{dataset_with_queries, Algo, Workbench};
use ktg_datasets::DatasetProfile;
use std::time::Duration;

fn main() {
    let (net, batch) = dataset_with_queries(DatasetProfile::Gowalla, 100, 42, 2, DEFAULTS.wq).expect("bench workload");
    let bench = Workbench::new(&net);
    let mut group = BenchGroup::new("fig3_group_size");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    for &p in &P_RANGE {
        let cfg = DEFAULTS.with_p(p);
        for algo in Algo::FIG3 {
            group.bench(algo.name(), p, || bench.run_batch(algo, &batch, &cfg, Some(50_000)).expect("bench query"));
        }
    }
}

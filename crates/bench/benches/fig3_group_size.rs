//! Figure 3 — latency vs group size `p` (Gowalla-profile dataset).
//!
//! Reproduces the paper's comparison of KTG-QKC-NLRNL, KTG-VKC-NL,
//! KTG-VKC-NLRNL, KTG-VKC-DEG-NLRNL, and DKTG-Greedy as `p` grows from 3
//! to 7. Expected shape (paper Fig 3): latency rises with `p`; VKC-DEG is
//! the fastest exact variant; QKC is the slowest; NLRNL beats NL.
//! Full sweeps over all four datasets: `cargo run --release -p ktg-bench
//! --bin experiments fig3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktg_bench::params::{DEFAULTS, P_RANGE};
use ktg_bench::runner::{dataset_with_queries, Algo, Workbench};
use ktg_datasets::DatasetProfile;

fn bench(c: &mut Criterion) {
    let (net, batch) = dataset_with_queries(DatasetProfile::Gowalla, 100, 42, 2, DEFAULTS.wq);
    let bench = Workbench::new(&net);
    let mut group = c.benchmark_group("fig3_group_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &p in &P_RANGE {
        let cfg = DEFAULTS.with_p(p);
        for algo in Algo::FIG3 {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), p),
                &cfg,
                |b, cfg| b.iter(|| bench.run_batch(algo, &batch, cfg, Some(50_000))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

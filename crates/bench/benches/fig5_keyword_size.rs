//! Figure 5 — latency vs query keyword size `|W_Q|` (Gowalla profile).
//!
//! Expected shape (paper Fig 5): near-flat curves — enough qualified
//! users exist at every size to assemble top-N groups — with
//! KTG-VKC-DEG-NLRNL well below the VKC variants.
//! Full sweeps: `experiments fig5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktg_bench::params::{DEFAULTS, WQ_RANGE};
use ktg_bench::runner::{Algo, Workbench};
use ktg_datasets::{DatasetProfile, QueryGen};

fn bench(c: &mut Criterion) {
    let net = DatasetProfile::Gowalla.instantiate(100, 42);
    let bench = Workbench::new(&net);
    let mut group = c.benchmark_group("fig5_keyword_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &wq in &WQ_RANGE {
        let cfg = DEFAULTS.with_wq(wq);
        // |W_Q| changes the workload itself: regenerate per size.
        let batch = QueryGen::new(&net, 42 ^ 0xBEEF).batch(2, wq);
        for algo in Algo::FIG456 {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), wq),
                &cfg,
                |b, cfg| b.iter(|| bench.run_batch(algo, &batch, cfg, Some(50_000))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

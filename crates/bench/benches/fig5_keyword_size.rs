//! Figure 5 — latency vs query keyword size `|W_Q|` (Gowalla profile).
//!
//! Expected shape (paper Fig 5): near-flat curves — enough qualified
//! users exist at every size to assemble top-N groups — with
//! KTG-VKC-DEG-NLRNL well below the VKC variants.
//! Full sweeps: `experiments fig5`.

use ktg_bench::harness::BenchGroup;
use ktg_bench::params::{DEFAULTS, WQ_RANGE};
use ktg_bench::runner::{Algo, Workbench};
use ktg_datasets::{DatasetProfile, QueryGen};
use std::time::Duration;

fn main() {
    let net = DatasetProfile::Gowalla.instantiate(100, 42);
    let bench = Workbench::new(&net);
    let mut group = BenchGroup::new("fig5_keyword_size");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    for &wq in &WQ_RANGE {
        let cfg = DEFAULTS.with_wq(wq);
        // |W_Q| changes the workload itself: regenerate per size.
        let batch = QueryGen::new(&net, 42 ^ 0xBEEF).batch(2, wq).expect("bench workload");
        for algo in Algo::FIG456 {
            group.bench(algo.name(), wq, || bench.run_batch(algo, &batch, &cfg, Some(50_000)).expect("bench query"));
        }
    }
}

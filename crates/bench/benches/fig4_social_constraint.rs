//! Figure 4 — latency vs social constraint `k` (Gowalla-profile dataset).
//!
//! Expected shape (paper Fig 4): latency grows with `k` (fewer valid
//! pairs survive filtering, and distance checks get more expensive for
//! NL); KTG-VKC-DEG-NLRNL stays fastest.
//! Full sweeps: `experiments fig4`.

use ktg_bench::harness::BenchGroup;
use ktg_bench::params::{DEFAULTS, K_RANGE};
use ktg_bench::runner::{dataset_with_queries, Algo, Workbench};
use ktg_datasets::DatasetProfile;
use std::time::Duration;

fn main() {
    let (net, batch) = dataset_with_queries(DatasetProfile::Gowalla, 100, 42, 2, DEFAULTS.wq).expect("bench workload");
    let bench = Workbench::new(&net);
    let mut group = BenchGroup::new("fig4_social_constraint");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    for &k in &K_RANGE {
        let cfg = DEFAULTS.with_k(k);
        for algo in Algo::FIG456 {
            group.bench(algo.name(), k, || bench.run_batch(algo, &batch, &cfg, Some(50_000)).expect("bench query"));
        }
    }
}

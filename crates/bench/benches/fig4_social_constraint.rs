//! Figure 4 — latency vs social constraint `k` (Gowalla-profile dataset).
//!
//! Expected shape (paper Fig 4): latency grows with `k` (fewer valid
//! pairs survive filtering, and distance checks get more expensive for
//! NL); KTG-VKC-DEG-NLRNL stays fastest.
//! Full sweeps: `experiments fig4`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktg_bench::params::{DEFAULTS, K_RANGE};
use ktg_bench::runner::{dataset_with_queries, Algo, Workbench};
use ktg_datasets::DatasetProfile;

fn bench(c: &mut Criterion) {
    let (net, batch) = dataset_with_queries(DatasetProfile::Gowalla, 100, 42, 2, DEFAULTS.wq);
    let bench = Workbench::new(&net);
    let mut group = c.benchmark_group("fig4_social_constraint");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &K_RANGE {
        let cfg = DEFAULTS.with_k(k);
        for algo in Algo::FIG456 {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), k),
                &cfg,
                |b, cfg| b.iter(|| bench.run_batch(algo, &batch, cfg, Some(50_000))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

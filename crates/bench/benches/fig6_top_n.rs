//! Figure 6 — latency vs result count `N` (Gowalla profile).
//!
//! Expected shape (paper Fig 6): mild growth with `N` (a larger top-N
//! heap weakens the keyword-pruning threshold), same algorithm ordering
//! as Figures 3–5. Full sweeps: `experiments fig6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktg_bench::params::{DEFAULTS, N_RANGE};
use ktg_bench::runner::{dataset_with_queries, Algo, Workbench};
use ktg_datasets::DatasetProfile;

fn bench(c: &mut Criterion) {
    let (net, batch) = dataset_with_queries(DatasetProfile::Gowalla, 100, 42, 2, DEFAULTS.wq);
    let bench = Workbench::new(&net);
    let mut group = c.benchmark_group("fig6_top_n");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &N_RANGE {
        let cfg = DEFAULTS.with_n(n);
        for algo in Algo::FIG456 {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), n),
                &cfg,
                |b, cfg| b.iter(|| bench.run_batch(algo, &batch, cfg, Some(50_000))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 6 — latency vs result count `N` (Gowalla profile).
//!
//! Expected shape (paper Fig 6): mild growth with `N` (a larger top-N
//! heap weakens the keyword-pruning threshold), same algorithm ordering
//! as Figures 3–5. Full sweeps: `experiments fig6`.

use ktg_bench::harness::BenchGroup;
use ktg_bench::params::{DEFAULTS, N_RANGE};
use ktg_bench::runner::{dataset_with_queries, Algo, Workbench};
use ktg_datasets::DatasetProfile;
use std::time::Duration;

fn main() {
    let (net, batch) = dataset_with_queries(DatasetProfile::Gowalla, 100, 42, 2, DEFAULTS.wq).expect("bench workload");
    let bench = Workbench::new(&net);
    let mut group = BenchGroup::new("fig6_top_n");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    for &n in &N_RANGE {
        let cfg = DEFAULTS.with_n(n);
        for algo in Algo::FIG456 {
            group.bench(algo.name(), n, || bench.run_batch(algo, &batch, &cfg, Some(50_000)).expect("bench query"));
        }
    }
}

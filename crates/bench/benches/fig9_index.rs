//! Figure 9 — index construction time (b) and space (a).
//!
//! Benchmarks NL vs NLRNL construction per dataset profile; the space
//! comparison (Fig 9a) is printed once per profile since bytes are
//! deterministic. Expected shape (paper Fig 9): NLRNL stores *less*
//! (half storage + skips the widest level) but takes *longer* to build
//! (maintains the reverse lists too).

use ktg_bench::harness::BenchGroup;
use ktg_datasets::DatasetProfile;
use ktg_index::{NlIndex, NlrnlIndex};
use std::time::Duration;

fn main() {
    let mut group = BenchGroup::new("fig9_index_build");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    for profile in DatasetProfile::PRIMARY {
        let net = profile.instantiate(200, 42);
        let graph = net.graph();
        // Fig 9a: deterministic space report.
        let nl = NlIndex::build(graph);
        let nlrnl = NlrnlIndex::build(graph);
        println!(
            "fig9a space {}: NL = {} bytes, NLRNL = {} bytes",
            profile,
            nl.space().total_bytes(),
            nlrnl.space().total_bytes()
        );
        group.bench("NL-build", profile.name(), || NlIndex::build(graph));
        group.bench("NLRNL-build", profile.name(), || NlrnlIndex::build(graph));
    }
}

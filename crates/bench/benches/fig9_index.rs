//! Figure 9 — index construction time (b) and space (a).
//!
//! Benchmarks NL vs NLRNL construction per dataset profile; the space
//! comparison (Fig 9a) is printed once per profile since bytes are
//! deterministic. Expected shape (paper Fig 9): NLRNL stores *less*
//! (half storage + skips the widest level) but takes *longer* to build
//! (maintains the reverse lists too).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktg_datasets::DatasetProfile;
use ktg_index::{NlIndex, NlrnlIndex};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_index_build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for profile in DatasetProfile::PRIMARY {
        let net = profile.instantiate(200, 42);
        let graph = net.graph();
        // Fig 9a: deterministic space report.
        let nl = NlIndex::build(graph);
        let nlrnl = NlrnlIndex::build(graph);
        println!(
            "fig9a space {}: NL = {} bytes, NLRNL = {} bytes",
            profile,
            nl.space().total_bytes(),
            nlrnl.space().total_bytes()
        );
        group.bench_with_input(BenchmarkId::new("NL-build", profile.name()), graph, |b, g| {
            b.iter(|| NlIndex::build(g))
        });
        group.bench_with_input(
            BenchmarkId::new("NLRNL-build", profile.name()),
            graph,
            |b, g| b.iter(|| NlrnlIndex::build(g)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

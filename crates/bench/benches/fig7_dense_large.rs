//! Figure 7 — (a) the denser Twitter profile vs `p`; (b) the large
//! DBLP-1M profile vs `k`, NL against NLRNL.
//!
//! Expected shape (paper Fig 7): on the dense graph VKC-DEG beats VKC by
//! a growing margin in `p`; on the large graph NL degrades sharply at
//! high `k` (on-demand level expansion) while NLRNL stays flat.
//! Full sweeps: `experiments fig7a` / `experiments fig7b`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktg_bench::params::{DEFAULTS, K_RANGE, P_RANGE};
use ktg_bench::runner::{dataset_with_queries, Algo, Workbench};
use ktg_datasets::DatasetProfile;

fn dense(c: &mut Criterion) {
    let (net, batch) = dataset_with_queries(DatasetProfile::Twitter, 200, 42, 2, DEFAULTS.wq);
    let bench = Workbench::new(&net);
    let mut group = c.benchmark_group("fig7a_dense_twitter");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &p in &P_RANGE {
        let cfg = DEFAULTS.with_p(p);
        for algo in [Algo::KtgVkcNlrnl, Algo::KtgVkcDegNlrnl] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), p),
                &cfg,
                |b, cfg| b.iter(|| bench.run_batch(algo, &batch, cfg, Some(50_000))),
            );
        }
    }
    group.finish();
}

fn large(c: &mut Criterion) {
    let (net, batch) = dataset_with_queries(DatasetProfile::DblpLarge, 400, 42, 2, DEFAULTS.wq);
    let bench = Workbench::new(&net);
    let mut group = c.benchmark_group("fig7b_large_dblp");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &K_RANGE {
        let cfg = DEFAULTS.with_k(k);
        for algo in [Algo::KtgVkcNl, Algo::KtgVkcDegNlrnl] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), k),
                &cfg,
                |b, cfg| b.iter(|| bench.run_batch(algo, &batch, cfg, Some(50_000))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, dense, large);
criterion_main!(benches);

//! Figure 7 — (a) the denser Twitter profile vs `p`; (b) the large
//! DBLP-1M profile vs `k`, NL against NLRNL.
//!
//! Expected shape (paper Fig 7): on the dense graph VKC-DEG beats VKC by
//! a growing margin in `p`; on the large graph NL degrades sharply at
//! high `k` (on-demand level expansion) while NLRNL stays flat.
//! Full sweeps: `experiments fig7a` / `experiments fig7b`.

use ktg_bench::harness::BenchGroup;
use ktg_bench::params::{DEFAULTS, K_RANGE, P_RANGE};
use ktg_bench::runner::{dataset_with_queries, Algo, Workbench};
use ktg_datasets::DatasetProfile;
use std::time::Duration;

fn dense() {
    let (net, batch) = dataset_with_queries(DatasetProfile::Twitter, 200, 42, 2, DEFAULTS.wq).expect("bench workload");
    let bench = Workbench::new(&net);
    let mut group = BenchGroup::new("fig7a_dense_twitter");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    for &p in &P_RANGE {
        let cfg = DEFAULTS.with_p(p);
        for algo in [Algo::KtgVkcNlrnl, Algo::KtgVkcDegNlrnl] {
            group.bench(algo.name(), p, || bench.run_batch(algo, &batch, &cfg, Some(50_000)).expect("bench query"));
        }
    }
}

fn large() {
    let (net, batch) = dataset_with_queries(DatasetProfile::DblpLarge, 400, 42, 2, DEFAULTS.wq).expect("bench workload");
    let bench = Workbench::new(&net);
    let mut group = BenchGroup::new("fig7b_large_dblp");
    group.sample_size(10).warm_up_time(Duration::from_millis(500));
    for &k in &K_RANGE {
        let cfg = DEFAULTS.with_k(k);
        for algo in [Algo::KtgVkcNl, Algo::KtgVkcDegNlrnl] {
            group.bench(algo.name(), k, || bench.run_batch(algo, &batch, &cfg, Some(50_000)).expect("bench query"));
        }
    }
}

fn main() {
    dense();
    large();
}

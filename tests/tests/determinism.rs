//! Seed determinism: the whole synthetic-data pipeline — dataset
//! profiles, generators, and query workloads — must be a pure function
//! of its seed. This is what makes every benchmark figure and every
//! randomized test in this workspace reproducible, and it pins the
//! hand-rolled `ktg_common::rng` stream: an accidental change to the
//! generator's output sequence fails here, not silently in a figure.

use ktg_datasets::{DatasetProfile, QueryGen};
use ktg_integration_tests::{random_graph, random_network};

#[test]
fn profile_instantiation_is_a_pure_function_of_the_seed() {
    for profile in DatasetProfile::PRIMARY {
        let a = profile.instantiate(400, 7);
        let b = profile.instantiate(400, 7);
        assert_eq!(a.graph(), b.graph(), "{profile}: same seed, same graph");
        assert_eq!(a.keywords(), b.keywords(), "{profile}: same seed, same keywords");

        let c = profile.instantiate(400, 8);
        assert!(
            a.graph() != c.graph() || a.keywords() != c.keywords(),
            "{profile}: different seed must change the dataset"
        );
    }
}

#[test]
fn query_workloads_are_a_pure_function_of_the_seed() {
    let net = DatasetProfile::Gowalla.instantiate(400, 7);
    let a = QueryGen::new(&net, 11).batch(8, 4).expect("workload");
    let b = QueryGen::new(&net, 11).batch(8, 4).expect("workload");
    assert_eq!(a, b, "same workload seed, same batch");
    let c = QueryGen::new(&net, 12).batch(8, 4).expect("workload");
    assert_ne!(a, c, "different workload seed, different batch");
}

#[test]
fn random_fixture_builders_are_deterministic() {
    assert_eq!(random_graph(20, 0.3, 99), random_graph(20, 0.3, 99));
    let a = random_network(20, 0.3, 8, 4, 99);
    let b = random_network(20, 0.3, 8, 4, 99);
    assert_eq!(a.graph(), b.graph());
    assert_eq!(a.keywords(), b.keywords());
}

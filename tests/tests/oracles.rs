//! Randomized tests: every distance oracle agrees with ground truth.
//!
//! NL, NLRNL and the BFS oracle must answer `Dis(u, v) > k` identically
//! to the all-pairs table, for every pair and every k, on arbitrary
//! graphs — including disconnected ones. NLRNL's exact distance recovery
//! and dynamic maintenance are covered here too. All cases are drawn from
//! a fixed-seed RNG, so failures reproduce exactly.

use ktg_common::SeededRng;
use ktg_graph::{bfs, DynamicGraph, VertexId};
use ktg_index::{BfsOracle, DistanceOracle, ExactOracle, NlIndex, NlrnlIndex, PllIndex};
use ktg_integration_tests::random_graph;

#[test]
fn all_oracles_agree_with_ground_truth() {
    let mut rng = SeededRng::seed_from_u64(0x04AC1E);
    for case in 0..48 {
        let n = rng.gen_range(2..24usize);
        let density = rng.gen_range(0.0..0.6);
        let seed = rng.gen_range(0u64..2000);
        let g = random_graph(n, density, seed);
        let exact = ExactOracle::build(&g);
        let nl = NlIndex::build(&g);
        let nlrnl = NlrnlIndex::build(&g);
        let pll = PllIndex::build(&g);
        let bfs_oracle = BfsOracle::new(&g);
        let k_max = 2 + n as u32; // beyond any possible diameter
        for u in g.vertices() {
            for v in g.vertices() {
                for k in 0..k_max {
                    let truth = exact.farther_than(u, v, k);
                    assert_eq!(nl.farther_than(u, v, k), truth, "case {case}: NL ({u:?},{v:?},{k})");
                    assert_eq!(
                        nlrnl.farther_than(u, v, k),
                        truth,
                        "case {case}: NLRNL ({u:?},{v:?},{k})"
                    );
                    assert_eq!(
                        pll.farther_than(u, v, k),
                        truth,
                        "case {case}: PLL ({u:?},{v:?},{k})"
                    );
                    assert_eq!(
                        bfs_oracle.farther_than(u, v, k),
                        truth,
                        "case {case}: BFS ({u:?},{v:?},{k})"
                    );
                }
            }
        }
    }
}

#[test]
fn nlrnl_distance_recovery_is_exact() {
    let mut rng = SeededRng::seed_from_u64(0xD157);
    for case in 0..48 {
        let n = rng.gen_range(2..20usize);
        let density = rng.gen_range(0.0..0.6);
        let seed = rng.gen_range(0u64..2000);
        let g = random_graph(n, density, seed);
        let exact = ExactOracle::build(&g);
        let nlrnl = NlrnlIndex::build(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                let truth = exact.distance(u, v);
                let got = nlrnl.distance(u, v);
                if truth == u32::MAX {
                    assert_eq!(got, None, "case {case}: ({u:?}, {v:?})");
                } else {
                    assert_eq!(got, Some(truth), "case {case}: ({u:?}, {v:?})");
                }
            }
        }
    }
}

#[test]
fn nlrnl_dynamic_updates_match_rebuild() {
    let mut rng = SeededRng::seed_from_u64(0xD1AC);
    for case in 0..48 {
        let n = rng.gen_range(3..16usize);
        let density = rng.gen_range(0.05..0.5);
        let seed = rng.gen_range(0u64..1000);
        let mutations = rng.gen_range(1..6usize);
        let csr = random_graph(n, density, seed);
        let mut graph = DynamicGraph::from_csr(&csr);
        let mut index = NlrnlIndex::build(&graph);
        for _ in 0..mutations {
            let u = VertexId(rng.gen_range(0..n as u32));
            let v = VertexId(rng.gen_range(0..n as u32));
            if u == v {
                continue;
            }
            let update = index.prepare_update(&graph, u, v);
            if graph.has_edge(u, v) {
                graph.remove_edge(u, v).expect("in range");
            } else {
                graph.insert_edge(u, v).expect("in range");
            }
            index.apply_update(&graph, update);

            let fresh = NlrnlIndex::build(&graph);
            for a in 0..n {
                for b in 0..n {
                    let (a, b) = (VertexId(a as u32), VertexId(b as u32));
                    assert_eq!(
                        index.distance(a, b),
                        fresh.distance(a, b),
                        "case {case}: distance mismatch after mutating ({u:?}, {v:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn nl_expansion_cache_is_stable() {
    let mut rng = SeededRng::seed_from_u64(0xCAC4E);
    for case in 0..48 {
        let n = rng.gen_range(4..20usize);
        let density = rng.gen_range(0.05..0.3);
        let seed = rng.gen_range(0u64..1000);
        let g = random_graph(n, density, seed);
        let nl = NlIndex::build(&g);
        let exact = ExactOracle::build(&g);
        // Ask in an order that forces expansion (large k first), then
        // re-ask everything: cached answers must stay correct.
        let k_max = 2 + n as u32;
        for round in 0..2 {
            for u in g.vertices() {
                for v in g.vertices() {
                    for k in (0..k_max).rev() {
                        assert_eq!(
                            nl.farther_than(u, v, k),
                            exact.farther_than(u, v, k),
                            "case {case}: round {round} ({u:?},{v:?},{k})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn bounded_bfs_matches_table() {
    let mut rng = SeededRng::seed_from_u64(0xBF5);
    for case in 0..48 {
        let n = rng.gen_range(2..24usize);
        let density = rng.gen_range(0.0..0.5);
        let seed = rng.gen_range(0u64..2000);
        let g = random_graph(n, density, seed);
        let table = bfs::all_pairs_distances(&g);
        let mut scratch = ktg_graph::BfsScratch::new(n);
        for u in g.vertices() {
            for v in g.vertices() {
                let truth = table[u.index()][v.index()];
                let got = bfs::distance_bounded(&g, u, v, n + 2, &mut scratch);
                if truth == u32::MAX {
                    assert_eq!(got, None, "case {case}");
                } else {
                    assert_eq!(got, Some(truth), "case {case}");
                }
            }
        }
    }
}

#[test]
fn nlrnl_persistence_roundtrip() {
    use ktg_index::persist;
    let mut rng = SeededRng::seed_from_u64(0x9E4515);
    for case in 0..32 {
        let n = rng.gen_range(2..20usize);
        let density = rng.gen_range(0.0..0.5);
        let seed = rng.gen_range(0u64..1000);
        let g = random_graph(n, density, seed);
        let index = NlrnlIndex::build(&g);
        let mut buf = Vec::new();
        persist::save_nlrnl(&index, &g, &mut buf).expect("serialize");
        let loaded = persist::load_nlrnl(&g, buf.as_slice()).expect("deserialize");
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(index.distance(u, v), loaded.distance(u, v), "case {case}");
                for k in 0..(n as u32 + 2) {
                    assert_eq!(
                        index.farther_than(u, v, k),
                        loaded.farther_than(u, v, k),
                        "case {case}"
                    );
                }
            }
        }
    }
}

#[test]
fn dynamic_wrapper_matches_exact_after_mutations() {
    use ktg_index::DynamicNlrnl;
    let mut rng = SeededRng::seed_from_u64(0xD7A);
    for case in 0..32 {
        let n = rng.gen_range(3..14usize);
        let density = rng.gen_range(0.05..0.5);
        let seed = rng.gen_range(0u64..500);
        let mutations = rng.gen_range(1..5usize);
        let csr = random_graph(n, density, seed);
        let mut dynamic = DynamicNlrnl::new(&csr);
        for _ in 0..mutations {
            let u = VertexId(rng.gen_range(0..n as u32));
            let v = VertexId(rng.gen_range(0..n as u32));
            if u == v {
                continue;
            }
            if dynamic.graph().has_edge(u, v) {
                dynamic.remove_edge(u, v).expect("valid");
            } else {
                dynamic.insert_edge(u, v).expect("valid");
            }
        }
        let exact = ExactOracle::build(&dynamic.graph().to_csr());
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                for k in 0..(n as u32 + 2) {
                    let (u, v) = (VertexId(u), VertexId(v));
                    assert_eq!(
                        dynamic.farther_than(u, v, k),
                        exact.farther_than(u, v, k),
                        "case {case}"
                    );
                }
            }
        }
    }
}

//! Property tests: every distance oracle agrees with ground truth.
//!
//! NL, NLRNL and the BFS oracle must answer `Dis(u, v) > k` identically
//! to the all-pairs table, for every pair and every k, on arbitrary
//! graphs — including disconnected ones. NLRNL's exact distance recovery
//! and dynamic maintenance are covered here too.

use ktg_graph::{bfs, DynamicGraph, VertexId};
use ktg_index::{BfsOracle, DistanceOracle, ExactOracle, NlIndex, NlrnlIndex, PllIndex};
use ktg_integration_tests::random_graph;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn all_oracles_agree_with_ground_truth(
        n in 2usize..24,
        density in 0.0f64..0.6,
        seed in 0u64..2000,
    ) {
        let g = random_graph(n, density, seed);
        let exact = ExactOracle::build(&g);
        let nl = NlIndex::build(&g);
        let nlrnl = NlrnlIndex::build(&g);
        let pll = PllIndex::build(&g);
        let bfs_oracle = BfsOracle::new(&g);
        let k_max = 2 + n as u32; // beyond any possible diameter
        for u in g.vertices() {
            for v in g.vertices() {
                for k in 0..k_max {
                    let truth = exact.farther_than(u, v, k);
                    prop_assert_eq!(nl.farther_than(u, v, k), truth, "NL ({:?},{:?},{})", u, v, k);
                    prop_assert_eq!(nlrnl.farther_than(u, v, k), truth, "NLRNL ({:?},{:?},{})", u, v, k);
                    prop_assert_eq!(pll.farther_than(u, v, k), truth, "PLL ({:?},{:?},{})", u, v, k);
                    prop_assert_eq!(bfs_oracle.farther_than(u, v, k), truth, "BFS ({:?},{:?},{})", u, v, k);
                }
            }
        }
    }

    #[test]
    fn nlrnl_distance_recovery_is_exact(
        n in 2usize..20,
        density in 0.0f64..0.6,
        seed in 0u64..2000,
    ) {
        let g = random_graph(n, density, seed);
        let exact = ExactOracle::build(&g);
        let nlrnl = NlrnlIndex::build(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                let truth = exact.distance(u, v);
                let got = nlrnl.distance(u, v);
                if truth == u32::MAX {
                    prop_assert_eq!(got, None);
                } else {
                    prop_assert_eq!(got, Some(truth), "({:?}, {:?})", u, v);
                }
            }
        }
    }

    #[test]
    fn nlrnl_dynamic_updates_match_rebuild(
        n in 3usize..16,
        density in 0.05f64..0.5,
        seed in 0u64..1000,
        mutations in 1usize..6,
    ) {
        let csr = random_graph(n, density, seed);
        let mut graph = DynamicGraph::from_csr(&csr);
        let mut index = NlrnlIndex::build(&graph);
        let mut s = seed;
        for _ in 0..mutations {
            // Deterministic pseudo-random mutation stream.
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = VertexId((s >> 16) as u32 % n as u32);
            let v = VertexId((s >> 40) as u32 % n as u32);
            if u == v {
                continue;
            }
            let update = index.prepare_update(&graph, u, v);
            if graph.has_edge(u, v) {
                graph.remove_edge(u, v).expect("in range");
            } else {
                graph.insert_edge(u, v).expect("in range");
            }
            index.apply_update(&graph, update);

            let fresh = NlrnlIndex::build(&graph);
            for a in 0..n {
                for b in 0..n {
                    let (a, b) = (VertexId(a as u32), VertexId(b as u32));
                    prop_assert_eq!(
                        index.distance(a, b),
                        fresh.distance(a, b),
                        "distance mismatch after mutating ({:?}, {:?})", u, v
                    );
                }
            }
        }
    }

    #[test]
    fn nl_expansion_cache_is_stable(
        n in 4usize..20,
        density in 0.05f64..0.3,
        seed in 0u64..1000,
    ) {
        let g = random_graph(n, density, seed);
        let nl = NlIndex::build(&g);
        let exact = ExactOracle::build(&g);
        // Ask in an order that forces expansion (large k first), then
        // re-ask everything: cached answers must stay correct.
        let k_max = 2 + n as u32;
        for round in 0..2 {
            for u in g.vertices() {
                for v in g.vertices() {
                    for k in (0..k_max).rev() {
                        prop_assert_eq!(
                            nl.farther_than(u, v, k),
                            exact.farther_than(u, v, k),
                            "round {} ({:?},{:?},{})", round, u, v, k
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_bfs_matches_table(
        n in 2usize..24,
        density in 0.0f64..0.5,
        seed in 0u64..2000,
    ) {
        let g = random_graph(n, density, seed);
        let table = bfs::all_pairs_distances(&g);
        let mut scratch = ktg_graph::BfsScratch::new(n);
        for u in g.vertices() {
            for v in g.vertices() {
                let truth = table[u.index()][v.index()];
                let got = bfs::distance_bounded(&g, u, v, n + 2, &mut scratch);
                if truth == u32::MAX {
                    prop_assert_eq!(got, None);
                } else {
                    prop_assert_eq!(got, Some(truth));
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn nlrnl_persistence_roundtrip(
        n in 2usize..20,
        density in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        use ktg_index::persist;
        let g = random_graph(n, density, seed);
        let index = NlrnlIndex::build(&g);
        let mut buf = Vec::new();
        persist::save_nlrnl(&index, &g, &mut buf).expect("serialize");
        let loaded = persist::load_nlrnl(&g, buf.as_slice()).expect("deserialize");
        for u in g.vertices() {
            for v in g.vertices() {
                prop_assert_eq!(index.distance(u, v), loaded.distance(u, v));
                for k in 0..(n as u32 + 2) {
                    prop_assert_eq!(
                        index.farther_than(u, v, k),
                        loaded.farther_than(u, v, k)
                    );
                }
            }
        }
    }

    #[test]
    fn dynamic_wrapper_matches_exact_after_mutations(
        n in 3usize..14,
        density in 0.05f64..0.5,
        seed in 0u64..500,
        mutations in 1usize..5,
    ) {
        use ktg_index::DynamicNlrnl;
        let csr = random_graph(n, density, seed);
        let mut dynamic = DynamicNlrnl::new(&csr);
        let mut s = seed;
        for _ in 0..mutations {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let u = VertexId((s >> 16) as u32 % n as u32);
            let v = VertexId((s >> 40) as u32 % n as u32);
            if u == v {
                continue;
            }
            if dynamic.graph().has_edge(u, v) {
                dynamic.remove_edge(u, v).expect("valid");
            } else {
                dynamic.insert_edge(u, v).expect("valid");
            }
        }
        let exact = ExactOracle::build(&dynamic.graph().to_csr());
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                for k in 0..(n as u32 + 2) {
                    let (u, v) = (VertexId(u), VertexId(v));
                    prop_assert_eq!(
                        dynamic.farther_than(u, v, k),
                        exact.farther_than(u, v, k)
                    );
                }
            }
        }
    }
}

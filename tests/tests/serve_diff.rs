//! Differential tests: the batched serving engine is **byte-identical**
//! to query-at-a-time solving.
//!
//! `ktg_core::serve` (DESIGN.md §13) claims that none of its
//! amortizations — scratch pooling, the epoch-guarded result cache, the
//! `(vertex, k)` conflict-row memo, the cross-query worker fan-out —
//! can change an answer: every outcome equals a fresh sequential
//! `bb::solve` / `dktg::solve_with_options` against the graph *as of
//! that workload position*. These suites check that claim on randomized
//! networks across thread counts and cache settings, including
//! workloads that interleave dynamic edge updates between query runs
//! (the epoch-invalidation path). Under `KTG_VERIFY=1` every serve
//! answer — cached hits included — additionally passes the checked-mode
//! result audit.

use ktg_common::{SeededRng, VertexId};
use ktg_core::serve::{ItemOutcome, ServeOptions, ServeSession, WorkloadItem};
use ktg_core::{bb, dktg, AttributedGraph, DktgQuery, Group, KtgQuery};
use ktg_graph::DynamicGraph;
use ktg_index::BfsOracle;
use ktg_integration_tests::{random_network, random_query};

/// Thread counts to sweep; `0` resolves to the machine's worker count
/// (CI pins it via `KTG_THREADS=4`).
const THREADS: [usize; 4] = [1, 2, 4, 0];

/// An outcome stripped to its result-bearing fields: the `cached` flags
/// legitimately differ between configurations, everything else may not.
#[derive(Debug, PartialEq)]
enum Answer {
    Ktg(Vec<Group>),
    Dktg { groups: Vec<Group>, diversity: u64, min_qkc: u64, score: u64 },
    Update { applied: bool },
}

fn strip(outcomes: &[ItemOutcome]) -> Vec<Answer> {
    outcomes
        .iter()
        .map(|o| match o {
            ItemOutcome::Ktg(a) => Answer::Ktg(a.groups.clone()),
            ItemOutcome::Dktg(a) => Answer::Dktg {
                groups: a.groups.clone(),
                diversity: a.diversity.to_bits(),
                min_qkc: a.min_qkc.to_bits(),
                score: a.score.to_bits(),
            },
            ItemOutcome::Update { applied } => Answer::Update { applied: *applied },
        })
        .collect()
}

/// The reference: replay the workload query-at-a-time, re-solving each
/// query from scratch against the current graph and applying updates to
/// a plain [`DynamicGraph`] replica (rebuilding the frozen network after
/// each applied change, exactly as the session does).
fn reference_replay(net: &AttributedGraph, workload: &[WorkloadItem]) -> Vec<Answer> {
    let opts = bb::BbOptions::vkc_deg();
    let mut cur = net.clone();
    let mut replica = DynamicGraph::from_csr(net.graph());
    let mut out = Vec::with_capacity(workload.len());
    for item in workload {
        match item {
            WorkloadItem::Ktg(q) => {
                let oracle = BfsOracle::new(cur.graph());
                out.push(Answer::Ktg(bb::solve(&cur, q, &oracle, &opts).groups));
            }
            WorkloadItem::Dktg(q) => {
                let oracle = BfsOracle::new(cur.graph());
                let r = dktg::solve_with_options(&cur, q, &oracle, &opts);
                out.push(Answer::Dktg {
                    groups: r.groups,
                    diversity: r.diversity.to_bits(),
                    min_qkc: r.min_qkc.to_bits(),
                    score: r.score.to_bits(),
                });
            }
            WorkloadItem::Insert(u, v) | WorkloadItem::Remove(u, v) => {
                let applied = match item {
                    WorkloadItem::Insert(..) => replica.insert_edge(*u, *v),
                    _ => replica.remove_edge(*u, *v),
                }
                .unwrap_or(false);
                if applied {
                    cur = AttributedGraph::new(
                        replica.to_csr(),
                        cur.vocab().clone(),
                        cur.keywords().clone(),
                    );
                }
                out.push(Answer::Update { applied });
            }
        }
    }
    out
}

/// Asserts every (threads, cache) serving configuration reproduces the
/// reference byte-for-byte, and returns whether any cache-on run hit.
fn assert_serve_matches_reference(
    label: &str,
    net: &AttributedGraph,
    workload: &[WorkloadItem],
) -> bool {
    let expected = reference_replay(net, workload);
    let mut any_hits = false;
    for use_cache in [true, false] {
        for threads in THREADS {
            let options = ServeOptions { threads, use_cache, ..ServeOptions::default() };
            let mut session = ServeSession::new(net.clone(), options);
            let outcomes = session.run(workload);
            assert_eq!(
                expected,
                strip(&outcomes),
                "{label}: cache={use_cache}, threads={threads} diverged from \
                 the query-at-a-time reference"
            );
            let stats = session.stats();
            if use_cache {
                any_hits |= stats.result_hits > 0;
            } else {
                assert_eq!(stats.result_hits, 0, "{label}: cache-off run claimed hits");
            }
        }
    }
    any_hits
}

/// A mixed workload over `net`: a small pool of distinct KTG/DKTG
/// queries with repeats (so the result cache has something to do).
fn query_pool_workload(net: &AttributedGraph, len: usize, seed: u64) -> Vec<WorkloadItem> {
    let mut rng = SeededRng::seed_from_u64(seed);
    let pool: Vec<WorkloadItem> = (0..4)
        .map(|i| {
            let kws = random_query(net, 3, seed ^ (i as u64 + 1));
            let base = KtgQuery::new(kws, 3, 2, 3).expect("valid params");
            if i % 2 == 0 {
                WorkloadItem::Ktg(base)
            } else {
                WorkloadItem::Dktg(DktgQuery::new(base, 0.5).expect("valid gamma"))
            }
        })
        .collect();
    (0..len).map(|_| pool[rng.gen_range(0..pool.len())].clone()).collect()
}

#[test]
fn serving_matches_sequential_on_random_networks() {
    let mut rng = SeededRng::seed_from_u64(0x5E4E);
    let mut hits = false;
    for case in 0..6 {
        let n = rng.gen_range(16..40usize);
        let density = rng.gen_range(0.08..0.35);
        let seed = rng.gen_range(0u64..1000);
        let net = random_network(n, density, 8, 4, seed);
        let workload = query_pool_workload(&net, 10, seed ^ 0xF00D);
        hits |= assert_serve_matches_reference(
            &format!("case {case} (n={n}, density={density:.2})"),
            &net,
            &workload,
        );
    }
    assert!(hits, "no repeat-bearing workload ever hit the result cache");
}

#[test]
fn serving_matches_sequential_across_dynamic_updates() {
    let mut rng = SeededRng::seed_from_u64(0xD1CE);
    for case in 0..4 {
        let n = rng.gen_range(18..36usize);
        let seed = rng.gen_range(0u64..1000);
        let net = random_network(n, 0.2, 8, 4, seed);
        // Interleave query runs with edge updates: each update bumps the
        // epoch, so post-update answers must come from fresh solves on
        // the mutated graph, never from the (now stale) cache.
        let mut workload = query_pool_workload(&net, 4, seed ^ 0xAAAA);
        for round in 0..3u64 {
            let u = VertexId(rng.gen_range(0..n as u32));
            let v = VertexId(rng.gen_range(0..n as u32));
            if u != v {
                workload.push(if round % 2 == 0 {
                    WorkloadItem::Insert(u, v)
                } else {
                    WorkloadItem::Remove(u, v)
                });
            }
            workload.extend(query_pool_workload(&net, 4, seed ^ round));
        }
        assert_serve_matches_reference(&format!("dynamic case {case} (n={n})"), &net, &workload);
    }
}

#[test]
fn repeated_identical_workload_is_fully_cached_second_time() {
    let net = random_network(24, 0.25, 8, 4, 42);
    let workload = query_pool_workload(&net, 6, 7);
    let mut session = ServeSession::new(net.clone(), ServeOptions::default());
    let first = session.run(&workload);
    let second = session.run(&workload);
    assert_eq!(strip(&first), strip(&second));
    // Single-threaded replay: after the first pass every distinct query
    // is resident, so the second pass must be answered entirely by the
    // cache. (Parallel runs may double-miss while racing, so this
    // property is only guaranteed sequentially.)
    let mut seq = ServeSession::new(
        net.clone(),
        ServeOptions { threads: 1, ..ServeOptions::default() },
    );
    seq.run(&workload);
    let after_first = seq.stats().result_misses;
    let outcomes = seq.run(&workload);
    assert_eq!(seq.stats().result_misses, after_first, "second pass missed");
    assert!(outcomes.iter().all(|o| match o {
        ItemOutcome::Ktg(a) => a.cached,
        ItemOutcome::Dktg(a) => a.cached,
        ItemOutcome::Update { .. } => true,
    }));
}

//! Differential tests: the batched serving engine is **byte-identical**
//! to query-at-a-time solving.
//!
//! `ktg_core::serve` (DESIGN.md §13) claims that none of its
//! amortizations — scratch pooling, the epoch-guarded result cache, the
//! `(vertex, k)` conflict-row memo, the cross-query worker fan-out —
//! can change an answer: every outcome equals a fresh sequential
//! `bb::solve` / `dktg::solve_with_options` against the graph *as of
//! that workload position*. These suites check that claim on randomized
//! networks across thread counts and cache settings, including
//! workloads that interleave dynamic edge updates between query runs
//! (the epoch-invalidation path). Under `KTG_VERIFY=1` every serve
//! answer — cached hits included — additionally passes the checked-mode
//! result audit.

use std::sync::{Mutex, OnceLock};

use ktg_common::fault::{self, FaultConfig, FaultSite};
use ktg_common::{SeededRng, VertexId};
use ktg_core::serve::{
    CachePolicy, ItemOutcome, OracleKind, ServeOptions, ServeSession, WorkloadItem,
};
use ktg_core::{bb, dktg, verify, AttributedGraph, DktgQuery, Group, KtgQuery};
use ktg_graph::{DynamicGraph, GraphFormat, GraphStore};
use ktg_index::{persist, BfsOracle, NlrnlIndex};
use ktg_integration_tests::{random_network, random_query};
use ktg_keywords::QueryKeywords;

/// Thread counts to sweep; `0` resolves to the machine's worker count
/// (CI pins it via `KTG_THREADS=4`).
const THREADS: [usize; 4] = [1, 2, 4, 0];

/// An outcome stripped to its result-bearing fields: the `cached` flags
/// legitimately differ between configurations, everything else may not.
#[derive(Debug, PartialEq)]
enum Answer {
    Ktg(Vec<Group>),
    Dktg { groups: Vec<Group>, diversity: u64, min_qkc: u64, score: u64 },
    Update { applied: bool },
}

fn strip(outcomes: &[ItemOutcome]) -> Vec<Answer> {
    outcomes
        .iter()
        .map(|o| match o {
            ItemOutcome::Ktg(a) => Answer::Ktg(a.groups.clone()),
            ItemOutcome::Dktg(a) => Answer::Dktg {
                groups: a.groups.clone(),
                diversity: a.diversity.to_bits(),
                min_qkc: a.min_qkc.to_bits(),
                score: a.score.to_bits(),
            },
            ItemOutcome::Update { applied } => Answer::Update { applied: *applied },
            ItemOutcome::Failed { reason } => {
                panic!("differential workload item failed: {reason}")
            }
            ItemOutcome::Overloaded => {
                panic!("differential workloads set no admission bound")
            }
        })
        .collect()
}

/// The fault registry is process-global; the tests that arm it (and the
/// one test sensitive to exact cache-stat counts) serialize on this.
fn fault_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Disarms the registry when dropped, so an assertion failure inside a
/// fault-armed test cannot leak injection into the rest of the binary.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        fault::set_config(None);
    }
}

/// The reference: replay the workload query-at-a-time, re-solving each
/// query from scratch against the current graph and applying updates to
/// a plain [`DynamicGraph`] replica (rebuilding the frozen network after
/// each applied change, exactly as the session does).
fn reference_replay(net: &AttributedGraph, workload: &[WorkloadItem]) -> Vec<Answer> {
    let opts = bb::BbOptions::vkc_deg();
    let mut cur = net.clone();
    let mut replica = DynamicGraph::from_graph(net.graph());
    let mut out = Vec::with_capacity(workload.len());
    for item in workload {
        match item {
            WorkloadItem::Ktg(q) => {
                let oracle = BfsOracle::new(cur.graph());
                out.push(Answer::Ktg(bb::solve(&cur, q, &oracle, &opts).groups));
            }
            WorkloadItem::Dktg(q) => {
                let oracle = BfsOracle::new(cur.graph());
                let r = dktg::solve_with_options(&cur, q, &oracle, &opts);
                out.push(Answer::Dktg {
                    groups: r.groups,
                    diversity: r.diversity.to_bits(),
                    min_qkc: r.min_qkc.to_bits(),
                    score: r.score.to_bits(),
                });
            }
            WorkloadItem::Insert(u, v) | WorkloadItem::Remove(u, v) => {
                let applied = match item {
                    WorkloadItem::Insert(..) => replica.insert_edge(*u, *v),
                    _ => replica.remove_edge(*u, *v),
                }
                .unwrap_or(false);
                if applied {
                    cur = AttributedGraph::new(
                        replica.to_csr(),
                        cur.vocab().clone(),
                        cur.keywords().clone(),
                    );
                }
                out.push(Answer::Update { applied });
            }
        }
    }
    out
}

/// Asserts every (threads, cache) serving configuration reproduces the
/// reference byte-for-byte, and returns whether any cache-on run hit.
fn assert_serve_matches_reference(
    label: &str,
    net: &AttributedGraph,
    workload: &[WorkloadItem],
) -> bool {
    let expected = reference_replay(net, workload);
    let mut any_hits = false;
    for use_cache in [true, false] {
        for threads in THREADS {
            let options = ServeOptions { threads, use_cache, ..ServeOptions::default() };
            let mut session = ServeSession::new(net.clone(), options);
            let outcomes = session.run(workload);
            assert_eq!(
                expected,
                strip(&outcomes),
                "{label}: cache={use_cache}, threads={threads} diverged from \
                 the query-at-a-time reference"
            );
            let stats = session.stats();
            if use_cache {
                any_hits |= stats.result_hits > 0;
            } else {
                assert_eq!(stats.result_hits, 0, "{label}: cache-off run claimed hits");
            }
        }
    }
    any_hits
}

/// A mixed workload over `net`: a small pool of distinct KTG/DKTG
/// queries with repeats (so the result cache has something to do).
fn query_pool_workload(net: &AttributedGraph, len: usize, seed: u64) -> Vec<WorkloadItem> {
    let mut rng = SeededRng::seed_from_u64(seed);
    let pool: Vec<WorkloadItem> = (0..4)
        .map(|i| {
            let kws = random_query(net, 3, seed ^ (i as u64 + 1));
            let base = KtgQuery::new(kws, 3, 2, 3).expect("valid params");
            if i % 2 == 0 {
                WorkloadItem::Ktg(base)
            } else {
                WorkloadItem::Dktg(DktgQuery::new(base, 0.5).expect("valid gamma"))
            }
        })
        .collect();
    (0..len).map(|_| pool[rng.gen_range(0..pool.len())].clone()).collect()
}

#[test]
fn serving_matches_sequential_on_random_networks() {
    let mut rng = SeededRng::seed_from_u64(0x5E4E);
    let mut hits = false;
    for case in 0..6 {
        let n = rng.gen_range(16..40usize);
        let density = rng.gen_range(0.08..0.35);
        let seed = rng.gen_range(0u64..1000);
        let net = random_network(n, density, 8, 4, seed);
        let workload = query_pool_workload(&net, 10, seed ^ 0xF00D);
        hits |= assert_serve_matches_reference(
            &format!("case {case} (n={n}, density={density:.2})"),
            &net,
            &workload,
        );
    }
    assert!(hits, "no repeat-bearing workload ever hit the result cache");
}

/// The persistence axis: a network round-tripped through
/// `save_bundle`/`load_bundle` — in both graph formats, with the bundled
/// NLRNL index preloaded into the session — must serve byte-identically
/// to the query-at-a-time reference on the original flat network.
#[test]
fn bundle_roundtrip_serves_byte_identically_in_both_formats() {
    let mut rng = SeededRng::seed_from_u64(0xB0D1);
    for case in 0..3 {
        let n = rng.gen_range(16..36usize);
        let seed = rng.gen_range(0u64..1000);
        let net = random_network(n, 0.22, 8, 4, seed);
        let workload = query_pool_workload(&net, 8, seed ^ 0xF00D);
        let expected = reference_replay(&net, &workload);
        for format in [GraphFormat::Flat, GraphFormat::Compressed] {
            let store = GraphStore::from_csr(net.graph().to_csr(), format);
            let index = NlrnlIndex::build(&store);
            let mut bytes = Vec::new();
            persist::save_bundle(&store, net.vocab(), net.keywords(), Some(&index), &mut bytes)
                .expect("bundle save");
            for threads in THREADS {
                let bundle = persist::load_bundle(bytes.as_slice()).expect("bundle load");
                assert_eq!(bundle.graph.format(), format, "case {case}: format changed");
                let loaded =
                    AttributedGraph::with_store(bundle.graph, bundle.vocab, bundle.keywords);
                let options = ServeOptions { threads, ..ServeOptions::default() };
                let mut session = ServeSession::with_index(loaded, options, bundle.index);
                let outcomes = session.run(&workload);
                assert_eq!(
                    expected,
                    strip(&outcomes),
                    "case {case}: bundle-loaded {format} serving at {threads} thread(s) \
                     diverged from the reference"
                );
            }
        }
    }
}

#[test]
fn serving_matches_sequential_across_dynamic_updates() {
    let mut rng = SeededRng::seed_from_u64(0xD1CE);
    for case in 0..4 {
        let n = rng.gen_range(18..36usize);
        let seed = rng.gen_range(0u64..1000);
        let net = random_network(n, 0.2, 8, 4, seed);
        // Interleave query runs with edge updates: each update bumps the
        // epoch, so post-update answers must come from fresh solves on
        // the mutated graph, never from the (now stale) cache.
        let mut workload = query_pool_workload(&net, 4, seed ^ 0xAAAA);
        for round in 0..3u64 {
            let u = VertexId(rng.gen_range(0..n as u32));
            let v = VertexId(rng.gen_range(0..n as u32));
            if u != v {
                workload.push(if round % 2 == 0 {
                    WorkloadItem::Insert(u, v)
                } else {
                    WorkloadItem::Remove(u, v)
                });
            }
            workload.extend(query_pool_workload(&net, 4, seed ^ round));
        }
        assert_serve_matches_reference(&format!("dynamic case {case} (n={n})"), &net, &workload);
    }
}

/// A workload engineered to exercise keyword-subset reuse: one broad
/// superset query first, then repeated narrower queries whose keyword
/// sets it contains (same p/k/N, so the cached answer is
/// seeding-eligible), with an edge update partway through to cross an
/// epoch boundary.
fn superset_then_subsets_workload(net: &AttributedGraph, seed: u64) -> Vec<WorkloadItem> {
    let broad = random_query(net, 5, seed);
    let ids = broad.ids().to_vec();
    let mut items = vec![WorkloadItem::Ktg(KtgQuery::new(broad, 3, 2, 3).expect("valid"))];
    for pick in [[0usize, 1, 2], [1, 2, 3], [2, 3, 4], [0, 2, 4]] {
        let kws = QueryKeywords::new(pick.map(|i| ids[i])).expect("validated size");
        items.push(WorkloadItem::Ktg(KtgQuery::new(kws, 3, 2, 3).expect("valid")));
    }
    items.push(WorkloadItem::Insert(VertexId(0), VertexId(3)));
    let narrow = QueryKeywords::new([ids[1], ids[3], ids[4]]).expect("validated size");
    items.push(WorkloadItem::Ktg(KtgQuery::new(narrow, 3, 2, 3).expect("valid")));
    items
}

/// The new serving axes — cache eviction policy, keyword-subset floor
/// seeding, and the PLL distance oracle — are pure amortizations: every
/// combination, across thread counts and an epoch-crossing update, is
/// byte-identical to the query-at-a-time reference. Debug builds audit
/// every answer in checked mode, so a subset-seeded solve that somehow
/// mis-projected a coverage mask would fail here, not just diverge.
#[test]
fn cache_policy_subset_reuse_and_oracle_axes_match_reference() {
    let mut rng = SeededRng::seed_from_u64(0xCA5E);
    let mut subset_seeded = false;
    for case in 0..3 {
        let n = rng.gen_range(18..34usize);
        let seed = rng.gen_range(0u64..1000);
        let net = random_network(n, 0.22, 8, 4, seed);
        let workload = superset_then_subsets_workload(&net, seed ^ 0xB0B);
        let expected = reference_replay(&net, &workload);
        for cache_policy in [CachePolicy::Fifo, CachePolicy::Cost] {
            for subset_reuse in [true, false] {
                for oracle in [OracleKind::Nlrnl, OracleKind::Pll] {
                    for threads in [1usize, 4] {
                        let options = ServeOptions {
                            threads,
                            cache_policy,
                            subset_reuse,
                            oracle,
                            ..ServeOptions::default()
                        };
                        let mut session = ServeSession::new(net.clone(), options);
                        let outcomes = session.run(&workload);
                        assert_eq!(
                            expected,
                            strip(&outcomes),
                            "case {case}: policy={cache_policy:?}, \
                             subset_reuse={subset_reuse}, oracle={oracle:?}, \
                             threads={threads} diverged from the reference"
                        );
                        let stats = session.stats();
                        if subset_reuse {
                            subset_seeded |= stats.subset_hits > 0;
                        } else {
                            assert_eq!(stats.subset_hits, 0, "reuse off but seeded");
                        }
                        if oracle == OracleKind::Pll {
                            assert_eq!(stats.row_hits, 0, "PLL mode bypasses the row memo");
                        }
                    }
                }
            }
        }
    }
    assert!(subset_seeded, "no subset query was ever floor-seeded");
}

#[test]
fn repeated_identical_workload_is_fully_cached_second_time() {
    let _guard = fault_lock().lock().unwrap();
    let net = random_network(24, 0.25, 8, 4, 42);
    let workload = query_pool_workload(&net, 6, 7);
    let mut session = ServeSession::new(net.clone(), ServeOptions::default());
    let first = session.run(&workload);
    let second = session.run(&workload);
    assert_eq!(strip(&first), strip(&second));
    // Single-threaded replay: after the first pass every distinct query
    // is resident, so the second pass must be answered entirely by the
    // cache. (Parallel runs may double-miss while racing, so this
    // property is only guaranteed sequentially.)
    let mut seq = ServeSession::new(
        net.clone(),
        ServeOptions { threads: 1, ..ServeOptions::default() },
    );
    seq.run(&workload);
    let after_first = seq.stats().result_misses;
    let outcomes = seq.run(&workload);
    assert_eq!(seq.stats().result_misses, after_first, "second pass missed");
    assert!(outcomes.iter().all(|o| match o {
        ItemOutcome::Ktg(a) => a.cached,
        ItemOutcome::Dktg(a) => a.cached,
        ItemOutcome::Update { .. } => true,
        ItemOutcome::Failed { .. } | ItemOutcome::Overloaded => false,
    }));
}

/// Fault-schedule axis: with deterministic injection armed — every
/// seeded schedule across every site combination — the serving engine's
/// retry-once recovery must absorb each injected panic and return
/// answers byte-identical to the fault-free run, with no item failed.
#[test]
fn serving_is_byte_identical_under_injected_faults() {
    let _guard = fault_lock().lock().unwrap();
    let _disarm = Disarm;

    let net = random_network(26, 0.22, 8, 4, 11);
    let mut workload = query_pool_workload(&net, 8, 0x7A57);
    workload.push(WorkloadItem::Insert(VertexId(0), VertexId(9)));
    workload.extend(query_pool_workload(&net, 4, 0x7A58));

    fault::set_config(None);
    let mut clean = ServeSession::new(net.clone(), ServeOptions::default());
    let expected = strip(&clean.run(&workload));

    let site_sets: [&[FaultSite]; 3] = [
        &fault::ALL_SITES,
        &[FaultSite::WorkerSolve],
        &[FaultSite::PoolAcquire, FaultSite::CacheLookup],
    ];
    for seed in [1u64, 7, 99] {
        for sites in site_sets {
            for rate in [1.0, 0.5] {
                fault::set_config(Some(FaultConfig::new(sites, rate, seed)));
                for threads in [1usize, 4] {
                    let label = format!(
                        "seed={seed}, sites={sites:?}, rate={rate}, threads={threads}"
                    );
                    let mut session = ServeSession::new(
                        net.clone(),
                        ServeOptions { threads, ..ServeOptions::default() },
                    );
                    let outcomes = session.run(&workload);
                    assert!(
                        !outcomes
                            .iter()
                            .any(|o| matches!(o, ItemOutcome::Failed { .. })),
                        "{label}: injected fault survived the retry"
                    );
                    assert_eq!(
                        expected,
                        strip(&outcomes),
                        "{label}: diverged from the fault-free run"
                    );
                }
            }
        }
    }
}

/// Crash-replay axis: an update workload is written through a real
/// [`ktg_index::wal::WalWriter`], then "crashed" at every possible
/// point — after each whole record, and at every byte offset inside the
/// final record (the torn-tail shape a mid-append crash leaves). Each
/// surviving log must replay into a session that answers a probe
/// workload byte-identically to the query-at-a-time reference over the
/// same surviving update prefix. Damage *before* the tail (bitflips)
/// must be a typed error, never a panic or a silently shortened replay.
#[test]
fn crash_replay_recovers_byte_identically_at_every_crash_point() {
    use ktg_index::wal::{replay, WalSync, WalWriter};

    let dir = std::env::temp_dir()
        .join(format!("ktg-serve-diff-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let log = dir.join("updates.wal");
    let cut_file = dir.join("cut.wal");

    let net = random_network(24, 0.25, 8, 4, 77);
    let update_lines =
        ["insert 0 9", "remove 0 9", "insert 3 11", "insert 0 9", "remove 3 11"];
    let updates: Vec<WorkloadItem> = update_lines
        .iter()
        .map(|line| {
            ktg_core::serve::parse_workload(line, &net).expect("valid update")[0].clone()
        })
        .collect();
    let probe = query_pool_workload(&net, 4, 0xC4A5);

    // Write the full log, remembering the byte boundary after every
    // record — the whole-record crash points.
    let mut writer = WalWriter::create(&log, 0, WalSync::Always).expect("create");
    let mut boundaries = vec![std::fs::metadata(&log).expect("meta").len() as usize];
    for line in update_lines {
        writer.append(line).expect("append");
        boundaries.push(std::fs::metadata(&log).expect("meta").len() as usize);
    }
    drop(writer);
    let full = std::fs::read(&log).expect("read log");
    assert_eq!(full.len(), *boundaries.last().expect("nonempty"));

    // Crash exactly between records: replay yields the whole prefix,
    // and the recovered session matches the reference over it.
    for (survivors, &cut) in boundaries.iter().enumerate() {
        std::fs::write(&cut_file, &full[..cut]).expect("write cut");
        let rep = replay(&cut_file).expect("boundary cut replays");
        assert!(!rep.torn_tail, "cut at record boundary {survivors} is not torn");
        let recovered_lines: Vec<&str> =
            rep.records.iter().map(|r| r.line.as_str()).collect();
        assert_eq!(recovered_lines, &update_lines[..survivors]);

        let mut scenario: Vec<WorkloadItem> = updates[..survivors].to_vec();
        scenario.extend(probe.iter().cloned());
        let expected = reference_replay(&net, &scenario);

        // Recover the way the server does: parse each surviving line,
        // apply through the session, then serve the probe queries.
        let mut session = ServeSession::new(net.clone(), ServeOptions::default());
        let replayed: Vec<WorkloadItem> = rep
            .records
            .iter()
            .map(|r| {
                ktg_core::serve::parse_workload(&r.line, session.net())
                    .expect("recovered line parses")[0]
                    .clone()
            })
            .collect();
        let mut outcomes = session.run(&replayed);
        outcomes.extend(session.run(&probe));
        assert_eq!(
            expected,
            strip(&outcomes),
            "crash after {survivors} record(s): recovered session diverged"
        );
    }

    // Crash inside the final record: every byte cut is a torn tail that
    // preserves exactly the earlier records.
    let last_boundary = boundaries[boundaries.len() - 2];
    for cut in last_boundary + 1..full.len() {
        std::fs::write(&cut_file, &full[..cut]).expect("write cut");
        let rep = replay(&cut_file).expect("torn tail replays");
        assert!(rep.torn_tail, "cut at byte {cut} must be torn");
        assert_eq!(rep.records.len(), update_lines.len() - 1, "cut at byte {cut}");
    }

    // Mid-log damage is fully-present-but-wrong, which no crash can
    // produce: a typed error, not a truncation.
    let first_record_payload = boundaries[0] + 4..boundaries[1];
    for pos in first_record_payload.step_by(3) {
        let mut bad = full.clone();
        bad[pos] ^= 0x20;
        std::fs::write(&cut_file, &bad).expect("write corrupt");
        let err = replay(&cut_file).expect_err("mid-log bitflip must be detected");
        assert!(
            err.to_string().contains("WAL"),
            "bitflip at {pos} gave an untyped error: {err}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Deadline/budget axis: under a tight per-query budget every answer is
/// either exact — and then byte-identical to the unconstrained run — or
/// explicitly degraded, and then its groups still pass the checked-mode
/// result audit (best-so-far answers are valid, just possibly fewer or
/// lower-coverage groups).
#[test]
fn tight_budget_answers_are_exact_or_verifiably_degraded() {
    let net = random_network(30, 0.2, 8, 4, 23);
    let workload = query_pool_workload(&net, 8, 0xDEAD);
    let expected = reference_replay(&net, &workload);

    // `node_budget: Some(1)` degrades every nontrivial search
    // deterministically (a 0ms deadline is only observed every
    // `POLL_STRIDE` nodes, so tiny searches would finish exactly and
    // the test would assert nothing).
    for (deadline_ms, node_budget) in [(Some(600_000), None), (None, Some(1))] {
        let mut engine = bb::BbOptions::vkc_deg().with_deadline_ms(deadline_ms);
        engine.node_budget = node_budget;
        for threads in [1usize, 4] {
            let options = ServeOptions { threads, engine, ..ServeOptions::default() };
            let mut session = ServeSession::new(net.clone(), options);
            let outcomes = session.run(&workload);
            for (idx, (item, outcome)) in workload.iter().zip(&outcomes).enumerate() {
                match (item, outcome) {
                    (WorkloadItem::Ktg(q), ItemOutcome::Ktg(a)) => {
                        if a.status.is_exact() {
                            assert_eq!(
                                expected[idx],
                                Answer::Ktg(a.groups.clone()),
                                "exact answer {idx} diverged (threads={threads})"
                            );
                        } else {
                            let report = verify::audit_results(&net, q, &a.groups);
                            assert!(
                                report.is_ok(),
                                "degraded answer {idx} failed the audit: {report}"
                            );
                        }
                    }
                    (WorkloadItem::Dktg(q), ItemOutcome::Dktg(a)) => {
                        if a.status.is_exact() {
                            assert_eq!(
                                expected[idx],
                                Answer::Dktg {
                                    groups: a.groups.clone(),
                                    diversity: a.diversity.to_bits(),
                                    min_qkc: a.min_qkc.to_bits(),
                                    score: a.score.to_bits(),
                                },
                                "exact DKTG answer {idx} diverged (threads={threads})"
                            );
                        } else {
                            let report = verify::audit_dktg_results(&net, q, &a.groups);
                            assert!(
                                report.is_ok(),
                                "degraded DKTG answer {idx} failed the audit: {report}"
                            );
                        }
                    }
                    other => panic!("item {idx}: mismatched outcome {other:?}"),
                }
            }
            // A generous deadline must not degrade anything; the
            // one-node budget must degrade every query on this net.
            let degraded = outcomes
                .iter()
                .filter(|o| match o {
                    ItemOutcome::Ktg(a) => !a.status.is_exact(),
                    ItemOutcome::Dktg(a) => !a.status.is_exact(),
                    _ => false,
                })
                .count();
            if node_budget.is_none() {
                assert_eq!(degraded, 0, "generous deadline degraded an answer");
            } else {
                assert!(degraded > 0, "one-node budget degraded nothing");
            }
        }
    }
}

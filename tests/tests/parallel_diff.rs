//! Differential tests: the parallel engine is **byte-identical** to the
//! sequential one.
//!
//! The root-level parallel driver (DESIGN.md §12) claims its merged
//! output equals the sequential engine's for every thread count, member
//! ordering, conflict kernel, and distance oracle — not just the same
//! coverage multiset but the exact same groups in the exact same order.
//! These suites check that claim on randomized networks and on
//! planted-partition (SBM) graphs, including the order-dependent modes
//! (`node_budget`, `stop_at_coverage`) that must dispatch to the
//! sequential engine regardless of the requested thread count.

use ktg_common::SeededRng;
use ktg_core::{bb, AttributedGraph, KtgQuery, MemberOrdering};
use ktg_index::{BfsOracle, DistanceOracle, NlrnlIndex, PllIndex};
use ktg_integration_tests::{random_network, random_query};

const ORDERINGS: [MemberOrdering; 4] = [
    MemberOrdering::Qkc,
    MemberOrdering::Vkc,
    MemberOrdering::VkcDeg,
    MemberOrdering::VkcDegDesc,
];

/// Thread counts to sweep; `0` resolves to the machine's worker count
/// (CI pins it via `KTG_THREADS=4`).
const THREADS: [usize; 4] = [2, 3, 8, 0];

/// Asserts that every (threads, kernel) configuration of `ordering`
/// returns exactly the groups the single-thread run returns.
fn assert_parallel_matches_sequential(
    label: &str,
    net: &AttributedGraph,
    query: &KtgQuery,
    oracle: &impl DistanceOracle,
    ordering: MemberOrdering,
) {
    for bitmap_threshold in [bb::DEFAULT_BITMAP_THRESHOLD, 0] {
        let base = bb::BbOptions::vkc()
            .with_ordering(ordering)
            .with_bitmap_threshold(bitmap_threshold);
        let sequential = bb::solve(net, query, oracle, &base.with_threads(1));
        for threads in THREADS {
            let parallel = bb::solve(net, query, oracle, &base.with_threads(threads));
            assert_eq!(
                sequential.groups, parallel.groups,
                "{label}: ordering {ordering:?}, bitmap_threshold {bitmap_threshold}, \
                 threads {threads} diverged from sequential"
            );
        }
    }
}

#[test]
fn parallel_matches_sequential_on_random_networks() {
    let mut rng = SeededRng::seed_from_u64(0xD1FF);
    for case in 0..10 {
        let n = rng.gen_range(16..48usize);
        let density = rng.gen_range(0.05..0.4);
        let seed = rng.gen_range(0u64..1000);
        let p = rng.gen_range(2..4usize);
        let k = rng.gen_range(0u32..3);
        let top_n = rng.gen_range(1..5usize);
        let net = random_network(n, density, 6, 3, seed);
        let query = KtgQuery::new(random_query(&net, 4, seed), p, k, top_n).expect("valid");
        let bfs = BfsOracle::new(net.graph());
        let nlrnl = NlrnlIndex::build(net.graph());
        for ordering in ORDERINGS {
            let label = format!("case {case} (bfs)");
            assert_parallel_matches_sequential(&label, &net, &query, &bfs, ordering);
            let label = format!("case {case} (nlrnl)");
            assert_parallel_matches_sequential(&label, &net, &query, &nlrnl, ordering);
        }
    }
}

/// The PLL oracle differential gate: a parallel-built 2-hop labeling
/// drives the parallel engine to the exact bytes the sequential engine
/// produces with the same oracle — and to the bytes the BFS reference
/// produces, closing the loop from label construction through search.
#[test]
fn parallel_matches_sequential_with_pll_oracle() {
    let mut rng = SeededRng::seed_from_u64(0x9A11);
    for case in 0..6 {
        let n = rng.gen_range(16..44usize);
        let seed = rng.gen_range(0u64..1000);
        let k = rng.gen_range(0u32..3);
        let net = random_network(n, 0.2, 6, 3, seed);
        let query = KtgQuery::new(random_query(&net, 4, seed), 3, k, 3).expect("valid");
        let pll = PllIndex::build_parallel(net.graph());
        for ordering in ORDERINGS {
            let label = format!("case {case} (pll)");
            assert_parallel_matches_sequential(&label, &net, &query, &pll, ordering);
        }
        let bfs = BfsOracle::new(net.graph());
        let reference = bb::solve(&net, &query, &bfs, &bb::BbOptions::vkc_deg());
        let with_pll = bb::solve(&net, &query, &pll, &bb::BbOptions::vkc_deg());
        assert_eq!(reference.groups, with_pll.groups, "case {case}: PLL diverged from BFS");
    }
}

#[test]
fn parallel_matches_sequential_on_sbm_graphs() {
    use ktg_datasets::keywords::{assign_zipf, KeywordModel};
    use ktg_datasets::sbm::{planted_partition, SbmParams};

    for (seed, blocks) in [(3u64, 4usize), (17, 6)] {
        let n = 120;
        let params = SbmParams { n, blocks, p_in: 0.15, p_out: 0.01 };
        let graph = planted_partition(&params, seed);
        let (vocab, vk) = assign_zipf(n, &KeywordModel::default(), seed ^ 0xF00D);
        let net = AttributedGraph::new(graph, vocab, vk);
        let query = KtgQuery::new(random_query(&net, 5, seed), 3, 2, 5).expect("valid");
        let nlrnl = NlrnlIndex::build(net.graph());
        for ordering in ORDERINGS {
            let label = format!("sbm seed {seed}");
            assert_parallel_matches_sequential(&label, &net, &query, &nlrnl, ordering);
        }
    }
}

#[test]
fn bitmap_and_oracle_kernels_agree_in_parallel() {
    let mut rng = SeededRng::seed_from_u64(0xCE12);
    for case in 0..12 {
        let n = rng.gen_range(12..40usize);
        let seed = rng.gen_range(0u64..1000);
        let k = rng.gen_range(0u32..4);
        let net = random_network(n, 0.2, 6, 3, seed);
        let query = KtgQuery::new(random_query(&net, 4, seed), 3, k, 3).expect("valid");
        let oracle = NlrnlIndex::build(net.graph());
        for threads in [1usize, 4] {
            let base = bb::BbOptions::vkc_deg().with_threads(threads);
            let bitmap = bb::solve(&net, &query, &oracle, &base);
            let probing =
                bb::solve(&net, &query, &oracle, &base.with_bitmap_threshold(0));
            assert_eq!(
                bitmap.groups, probing.groups,
                "case {case}: kernels diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn order_dependent_modes_match_exactly_at_any_thread_count() {
    // node_budget and stop_at_coverage results are defined by discovery
    // order, so `run` must dispatch them to the sequential engine: the
    // groups AND the work counters must be identical at any requested
    // thread count.
    let mut rng = SeededRng::seed_from_u64(0x0DEB);
    for case in 0..12 {
        let n = rng.gen_range(12..36usize);
        let seed = rng.gen_range(0u64..1000);
        let net = random_network(n, 0.25, 6, 3, seed);
        let query = KtgQuery::new(random_query(&net, 4, seed), 3, 1, 2).expect("valid");
        let oracle = NlrnlIndex::build(net.graph());

        let truncating = bb::BbOptions { node_budget: Some(8), ..bb::BbOptions::vkc_deg() };
        let early_stop =
            bb::BbOptions { stop_at_coverage: Some(1), ..bb::BbOptions::vkc_deg() };
        for (mode, opts) in [("node_budget", truncating), ("stop_at_coverage", early_stop)] {
            let sequential = bb::solve(&net, &query, &oracle, &opts.with_threads(1));
            for threads in [2usize, 8, 0] {
                let parallel = bb::solve(&net, &query, &oracle, &opts.with_threads(threads));
                assert_eq!(
                    sequential.groups, parallel.groups,
                    "case {case}: {mode} groups diverged at {threads} threads"
                );
                assert_eq!(
                    sequential.stats, parallel.stats,
                    "case {case}: {mode} must run the identical sequential engine"
                );
            }
        }
    }
}

#[test]
fn truncated_runs_report_truncation_at_every_thread_count() {
    let net = random_network(30, 0.2, 6, 3, 77);
    let query = KtgQuery::new(random_query(&net, 4, 77), 3, 1, 2).expect("valid");
    let oracle = NlrnlIndex::build(net.graph());
    let opts = bb::BbOptions { node_budget: Some(2), ..bb::BbOptions::vkc_deg() };
    for threads in [1usize, 4] {
        let out = bb::solve(&net, &query, &oracle, &opts.with_threads(threads));
        assert!(out.stats.truncated, "budget of 2 nodes must truncate ({threads} threads)");
    }
}

//! End-to-end integration: dataset profile → indexes → queries → results.
//!
//! These run on small scaled profiles (hundreds of vertices) and check
//! the cross-crate contracts the benches rely on: deterministic
//! workloads, index/result agreement, TAGQ vs KTG behaviour, and the
//! multi-query-vertex extension.

use ktg_core::tagq::{self, TagqOptions};
use ktg_core::{bb, brute, candidates, multi_query, KtgQuery};
use ktg_datasets::{DatasetProfile, QueryGen};
use ktg_index::{BfsOracle, DistanceOracle, NlIndex, NlrnlIndex};

fn scaled_net() -> ktg_core::AttributedGraph {
    DatasetProfile::Brightkite.instantiate(400, 17)
}

#[test]
fn full_pipeline_all_indexes_agree() {
    let net = scaled_net();
    let nl = NlIndex::build(net.graph());
    let nlrnl = NlrnlIndex::build(net.graph());
    let bfs = BfsOracle::new(net.graph());
    let mut qg = QueryGen::new(&net, 3);
    for _ in 0..5 {
        let query = KtgQuery::new(qg.query(6).expect("workload"), 3, 2, 5).expect("valid");
        let a = bb::solve(&net, &query, &nl, &bb::BbOptions::vkc_deg());
        let b = bb::solve(&net, &query, &nlrnl, &bb::BbOptions::vkc_deg());
        let c = bb::solve(&net, &query, &bfs, &bb::BbOptions::vkc_deg());
        assert_eq!(a.groups, b.groups, "NL vs NLRNL");
        assert_eq!(b.groups, c.groups, "NLRNL vs BFS");
    }
}

#[test]
fn orderings_agree_on_coverage_at_scale() {
    let net = scaled_net();
    let nlrnl = NlrnlIndex::build(net.graph());
    let mut qg = QueryGen::new(&net, 23);
    for _ in 0..3 {
        let query = KtgQuery::new(qg.query(5).expect("workload"), 3, 1, 3).expect("valid");
        let vkc = bb::solve(&net, &query, &nlrnl, &bb::BbOptions::vkc());
        let deg = bb::solve(&net, &query, &nlrnl, &bb::BbOptions::vkc_deg());
        let qkc = bb::solve(&net, &query, &nlrnl, &bb::BbOptions::qkc());
        let counts = |o: &bb::KtgOutcome| -> Vec<u32> {
            o.groups.iter().map(|g| g.coverage_count()).collect()
        };
        assert_eq!(counts(&vkc), counts(&deg));
        assert_eq!(counts(&deg), counts(&qkc));
    }
}

#[test]
fn brute_force_confirms_bb_on_tiny_profile() {
    // A very small instance where |V|^p is survivable.
    let net = DatasetProfile::Brightkite.instantiate(1200, 5);
    let oracle = BfsOracle::new(net.graph());
    let mut qg = QueryGen::new(&net, 7);
    let query = KtgQuery::new(qg.query(4).expect("workload"), 3, 1, 2).expect("valid");
    let fast = bb::solve(&net, &query, &oracle, &bb::BbOptions::vkc_deg());
    let slow = brute::solve(&net, &query, &oracle);
    let counts = |groups: &[ktg_core::Group]| -> Vec<u32> {
        groups.iter().map(|g| g.coverage_count()).collect()
    };
    assert_eq!(counts(&fast.groups), counts(&slow.groups));
    assert!(fast.stats.nodes <= slow.stats.nodes, "BB must not explore more than brute force");
}

#[test]
fn workload_batches_are_reproducible() {
    let net = scaled_net();
    let a = QueryGen::new(&net, 77).batch(10, 6).expect("workload");
    let b = QueryGen::new(&net, 77).batch(10, 6).expect("workload");
    assert_eq!(a, b);
}

#[test]
fn tagq_never_beats_ktg_on_union_coverage() {
    // KTG maximizes the union; TAGQ maximizes the sum. On the same
    // tenuity constraint, the union coverage of TAGQ's best group can
    // never exceed KTG's optimum.
    let net = scaled_net();
    let oracle = NlrnlIndex::build(net.graph());
    let mut qg = QueryGen::new(&net, 31);
    for _ in 0..3 {
        let query = KtgQuery::new(qg.query(5).expect("workload"), 3, 1, 1).expect("valid");
        let ktg = bb::solve(&net, &query, &oracle, &bb::BbOptions::vkc_deg());
        let tq = tagq::solve(&net, &query, &oracle, &TagqOptions::default());
        if let (Some(kg), Some(tg)) = (ktg.groups.first(), tq.groups.first()) {
            assert!(
                tg.group.coverage_count() <= kg.coverage_count(),
                "TAGQ union {} exceeded KTG optimum {}",
                tg.group.coverage_count(),
                kg.coverage_count()
            );
        }
    }
}

#[test]
fn multi_query_vertex_results_avoid_author_neighborhood() {
    let net = scaled_net();
    let oracle = NlrnlIndex::build(net.graph());
    let mut qg = QueryGen::new(&net, 41);
    let query = KtgQuery::new(qg.query(6).expect("workload"), 3, 1, 3).expect("valid");
    let masks = net.compile(query.keywords());
    let mut cands = candidates::collect_vec(net.graph(), &masks);
    // Use the highest-degree vertex as the "author".
    let author = net
        .graph()
        .vertices()
        .max_by_key(|&v| net.graph().degree(v))
        .expect("non-empty graph");
    multi_query::restrict_candidates(&oracle, &[author], 2, &mut cands);
    let out = bb::solve_with_candidates(&query, &oracle, &cands, &bb::BbOptions::vkc_deg());
    for g in &out.groups {
        for &v in g.members() {
            assert!(v != author);
            assert!(oracle.farther_than(author, v, 2));
        }
    }
}

#[test]
fn index_space_ordering_matches_paper() {
    // Figure 9a's claim: NLRNL stores less than NL (half storage and the
    // widest level dropped).
    for profile in [DatasetProfile::Gowalla, DatasetProfile::Brightkite] {
        let net = profile.instantiate(400, 9);
        let nl = NlIndex::build(net.graph());
        let nlrnl = NlrnlIndex::build(net.graph());
        assert!(
            nlrnl.space().total_bytes() < nl.space().total_bytes(),
            "{profile}: NLRNL {} !< NL {}",
            nlrnl.space().total_bytes(),
            nl.space().total_bytes()
        );
    }
}

#[test]
fn unsatisfiable_queries_return_empty() {
    let net = scaled_net();
    let oracle = BfsOracle::new(net.graph());
    // k larger than the diameter: no pair qualifies.
    let mut qg = QueryGen::new(&net, 53);
    let query = KtgQuery::new(qg.query(6).expect("workload"), 3, 60, 2).expect("valid");
    let out = bb::solve(&net, &query, &oracle, &bb::BbOptions::vkc_deg());
    // Groups can only exist across disconnected components; with p = 3 we
    // need 3 mutually unreachable candidates. Verify feasibility if any.
    for g in &out.groups {
        for (i, &u) in g.members().iter().enumerate() {
            for &v in &g.members()[i + 1..] {
                assert!(oracle.farther_than(u, v, 60));
            }
        }
    }
}

#[test]
fn pll_oracle_agrees_in_full_pipeline() {
    // The PLL extension must be a drop-in replacement for NLRNL in the
    // end-to-end query path.
    use ktg_index::PllIndex;
    let net = scaled_net();
    let pll = PllIndex::build(net.graph());
    let nlrnl = NlrnlIndex::build(net.graph());
    let mut qg = QueryGen::new(&net, 61);
    for _ in 0..3 {
        let query = KtgQuery::new(qg.query(5).expect("workload"), 3, 2, 4).expect("valid");
        let a = bb::solve(&net, &query, &pll, &bb::BbOptions::vkc_deg());
        let b = bb::solve(&net, &query, &nlrnl, &bb::BbOptions::vkc_deg());
        assert_eq!(a.groups, b.groups);
    }
    // PLL label size sanity: labels exist and the index answers
    // distances exactly like NLRNL's recovery.
    assert!(pll.label_entries() >= net.num_vertices());
    for u in 0..20.min(net.num_vertices()) {
        for v in 0..20.min(net.num_vertices()) {
            let (u, v) = (ktg_common::VertexId(u as u32), ktg_common::VertexId(v as u32));
            assert_eq!(pll.distance(u, v), nlrnl.distance(u, v));
        }
    }
}

#[test]
fn tenuity_reports_consistent_with_results() {
    // Every group returned by the engine must be a k-distance group under
    // the tenuity metrics module, with group tenuity > k.
    use ktg_core::tenuity;
    let net = scaled_net();
    let index = NlrnlIndex::build(net.graph());
    let mut qg = QueryGen::new(&net, 71);
    let k = 2u32;
    let query = KtgQuery::new(qg.query(6).expect("workload"), 3, k, 5).expect("valid");
    let out = bb::solve(&net, &query, &index, &bb::BbOptions::vkc_deg());
    for g in &out.groups {
        let r = tenuity::report(&index, g.members(), k);
        assert!(r.is_k_distance_group());
        assert_eq!(r.ktriangles, 0);
        let t = tenuity::group_tenuity(g.members(), |u, v| index.distance(u, v));
        if let Some(t) = t {
            assert!(t > k, "tenuity {t} must exceed k={k}");
        }
    }
}

//! Randomized tests for the DKTG machinery (paper §VI), over seeded
//! random inputs (deterministic — failures reproduce exactly).

use ktg_common::SeededRng;
use ktg_core::dktg::{self, DktgQuery};
use ktg_core::KtgQuery;
use ktg_index::{DistanceOracle, ExactOracle};
use ktg_integration_tests::{random_network, random_query};

#[test]
fn greedy_invariants() {
    let mut rng = SeededRng::seed_from_u64(0x6EED);
    for case in 0..64 {
        let n = rng.gen_range(6..20usize);
        let density = rng.gen_range(0.05..0.5);
        let seed = rng.gen_range(0u64..1000);
        let top_n = rng.gen_range(1..4usize);
        let gamma = rng.gen_range(0.0..1.0);
        let net = random_network(n, density, 6, 3, seed);
        let base = KtgQuery::new(random_query(&net, 4, seed), 2, 1, top_n).expect("valid");
        let query = DktgQuery::new(base, gamma).expect("gamma in range");
        let oracle = ExactOracle::build(net.graph());
        let out = dktg::solve(&net, &query, &oracle);

        // Score components live in [0, 1].
        assert!((0.0..=1.0).contains(&out.diversity), "case {case}: dL = {}", out.diversity);
        assert!((0.0..=1.0).contains(&out.score), "case {case}: score = {}", out.score);
        if !out.groups.is_empty() {
            assert!((0.0..=1.0).contains(&out.min_qkc), "case {case}");
        }

        // Groups are pairwise member-disjoint (greedy removes members).
        let mut seen = std::collections::HashSet::new();
        for g in &out.groups {
            for &v in g.members() {
                assert!(seen.insert(v), "case {case}: member {v:?} reused across groups");
            }
        }

        // Every group is feasible.
        for g in &out.groups {
            assert_eq!(g.len(), 2, "case {case}");
            let (u, v) = (g.members()[0], g.members()[1]);
            assert!(oracle.farther_than(u, v, 1), "case {case}");
        }

        // Disjoint groups ⇒ dL = 1 whenever there are ≥ 2 groups.
        if out.groups.len() >= 2 {
            assert!((out.diversity - 1.0).abs() < 1e-9, "case {case}");
        }

        // §VI-C bound holds when the full N groups were produced.
        if out.groups.len() == query.base().n() && query.base().n() >= 2 {
            let bound = dktg::approximation_ratio(gamma, query.base().keywords().len());
            assert!(
                out.score >= bound - 1e-9,
                "case {case}: score {} < bound {}",
                out.score,
                bound
            );
        }
    }
}

#[test]
fn diversity_function_is_a_jaccard_distance() {
    use ktg_common::VertexId;
    use ktg_core::Group;
    use std::collections::BTreeSet;

    let mut rng = SeededRng::seed_from_u64(0xD1F);
    let random_set = |rng: &mut SeededRng| -> BTreeSet<u32> {
        let len = rng.gen_range(1..5usize);
        let mut ids = BTreeSet::new();
        while ids.len() < len {
            ids.insert(rng.gen_range(0u32..12));
        }
        ids
    };
    for case in 0..128 {
        let a_ids = random_set(&mut rng);
        let b_ids = random_set(&mut rng);
        let a = Group::new(a_ids.iter().map(|&i| VertexId(i)).collect(), 0);
        let b = Group::new(b_ids.iter().map(|&i| VertexId(i)).collect(), 0);
        let d_ab = dktg::diversity_dl(&a, &b);
        let d_ba = dktg::diversity_dl(&b, &a);
        assert!((d_ab - d_ba).abs() < 1e-12, "case {case}: symmetry");
        assert!((0.0..=1.0).contains(&d_ab), "case {case}: range");
        assert_eq!(dktg::diversity_dl(&a, &a), 0.0, "case {case}: identity");
        if a_ids.is_disjoint(&b_ids) {
            assert!((d_ab - 1.0).abs() < 1e-12, "case {case}: disjoint groups at distance 1");
        }
    }
}

#[test]
fn first_greedy_group_is_coverage_optimal() {
    let mut rng = SeededRng::seed_from_u64(0x0971);
    for case in 0..64 {
        let n = rng.gen_range(6..16usize);
        let density = rng.gen_range(0.05..0.4);
        let seed = rng.gen_range(0u64..500);
        let net = random_network(n, density, 5, 3, seed);
        let base = KtgQuery::new(random_query(&net, 3, seed), 2, 1, 2).expect("valid");
        let oracle = ExactOracle::build(net.graph());
        // The optimum according to plain KTG.
        let ktg = ktg_core::bb::solve(
            &net,
            &base.with_n(1).expect("valid"),
            &oracle,
            &ktg_core::bb::BbOptions::vkc_deg(),
        );
        let query = DktgQuery::new(base, 0.5).expect("gamma");
        let out = dktg::solve(&net, &query, &oracle);
        match (ktg.groups.first(), out.groups.first()) {
            (Some(best), Some(first)) => {
                assert_eq!(first.coverage_count(), best.coverage_count(), "case {case}");
            }
            (None, None) => {}
            (a, b) => panic!("case {case}: existence mismatch: {a:?} vs {b:?}"),
        }
    }
}

//! Property tests for the DKTG machinery (paper §VI).

use ktg_core::dktg::{self, DktgQuery};
use ktg_core::{KtgQuery};
use ktg_index::{DistanceOracle, ExactOracle};
use ktg_integration_tests::{random_network, random_query};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn greedy_invariants(
        n in 6usize..20,
        density in 0.05f64..0.5,
        seed in 0u64..1000,
        top_n in 1usize..4,
        gamma in 0.0f64..1.0,
    ) {
        let net = random_network(n, density, 6, 3, seed);
        let base = KtgQuery::new(random_query(&net, 4, seed), 2, 1, top_n).expect("valid");
        let query = DktgQuery::new(base, gamma).expect("gamma in range");
        let oracle = ExactOracle::build(net.graph());
        let out = dktg::solve(&net, &query, &oracle);

        // Score components live in [0, 1].
        prop_assert!((0.0..=1.0).contains(&out.diversity), "dL = {}", out.diversity);
        prop_assert!((0.0..=1.0).contains(&out.score), "score = {}", out.score);
        if !out.groups.is_empty() {
            prop_assert!((0.0..=1.0).contains(&out.min_qkc));
        }

        // Groups are pairwise member-disjoint (greedy removes members).
        let mut seen = std::collections::HashSet::new();
        for g in &out.groups {
            for &v in g.members() {
                prop_assert!(seen.insert(v), "member {:?} reused across groups", v);
            }
        }

        // Every group is feasible.
        for g in &out.groups {
            prop_assert_eq!(g.len(), 2);
            let (u, v) = (g.members()[0], g.members()[1]);
            prop_assert!(oracle.farther_than(u, v, 1));
        }

        // Disjoint groups ⇒ dL = 1 whenever there are ≥ 2 groups.
        if out.groups.len() >= 2 {
            prop_assert!((out.diversity - 1.0).abs() < 1e-9);
        }

        // §VI-C bound holds when the full N groups were produced.
        if out.groups.len() == query.base().n() && query.base().n() >= 2 {
            let bound = dktg::approximation_ratio(gamma, query.base().keywords().len());
            prop_assert!(out.score >= bound - 1e-9, "score {} < bound {}", out.score, bound);
        }
    }

    #[test]
    fn diversity_function_is_a_jaccard_distance(
        a_ids in proptest::collection::btree_set(0u32..12, 1..5),
        b_ids in proptest::collection::btree_set(0u32..12, 1..5),
    ) {
        use ktg_core::Group;
        use ktg_common::VertexId;
        let a = Group::new(a_ids.iter().map(|&i| VertexId(i)).collect(), 0);
        let b = Group::new(b_ids.iter().map(|&i| VertexId(i)).collect(), 0);
        let d_ab = dktg::diversity_dl(&a, &b);
        let d_ba = dktg::diversity_dl(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-12, "symmetry");
        prop_assert!((0.0..=1.0).contains(&d_ab), "range");
        prop_assert_eq!(dktg::diversity_dl(&a, &a), 0.0, "identity");
        if a_ids.is_disjoint(&b_ids) {
            prop_assert!((d_ab - 1.0).abs() < 1e-12, "disjoint groups at distance 1");
        }
    }

    #[test]
    fn first_greedy_group_is_coverage_optimal(
        n in 6usize..16,
        density in 0.05f64..0.4,
        seed in 0u64..500,
    ) {
        let net = random_network(n, density, 5, 3, seed);
        let base = KtgQuery::new(random_query(&net, 3, seed), 2, 1, 2).expect("valid");
        let oracle = ExactOracle::build(net.graph());
        // The optimum according to plain KTG.
        let ktg = ktg_core::bb::solve(
            &net,
            &base.with_n(1).expect("valid"),
            &oracle,
            &ktg_core::bb::BbOptions::vkc_deg(),
        );
        let query = DktgQuery::new(base, 0.5).expect("gamma");
        let out = dktg::solve(&net, &query, &oracle);
        match (ktg.groups.first(), out.groups.first()) {
            (Some(best), Some(first)) => {
                prop_assert_eq!(first.coverage_count(), best.coverage_count());
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "existence mismatch: {:?} vs {:?}", a, b),
        }
    }
}

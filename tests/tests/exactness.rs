//! Randomized tests: every branch-and-bound variant is **exact**.
//!
//! On arbitrary attributed networks, each algorithm configuration must
//! return groups with the same top-N coverage multiset as brute force,
//! and every returned group must be feasible (size p, every pairwise
//! distance over k, every member covering ≥ 1 query keyword). Cases come
//! from a fixed-seed RNG so failures reproduce exactly.

use ktg_common::SeededRng;
use ktg_core::{bb, brute, KtgQuery, MemberOrdering};
use ktg_index::{DistanceOracle, ExactOracle};
use ktg_integration_tests::{random_network, random_query};

fn coverage_counts(groups: &[ktg_core::Group]) -> Vec<u32> {
    groups.iter().map(|g| g.coverage_count()).collect()
}

#[test]
fn bb_matches_brute_force() {
    let mut rng = SeededRng::seed_from_u64(0xB8);
    for case in 0..64 {
        let n = rng.gen_range(4..18usize);
        let density = rng.gen_range(0.05..0.5);
        let seed = rng.gen_range(0u64..1000);
        let p = rng.gen_range(2..4usize);
        let k = rng.gen_range(0u32..4);
        let top_n = rng.gen_range(1..4usize);
        let wq = rng.gen_range(2..5usize);
        let net = random_network(n, density, 6, 3, seed);
        let query = KtgQuery::new(random_query(&net, wq, seed), p, k, top_n).expect("valid");
        let oracle = ExactOracle::build(net.graph());
        let reference = brute::solve(&net, &query, &oracle);

        for ordering in [
            MemberOrdering::Qkc,
            MemberOrdering::Vkc,
            MemberOrdering::VkcDeg,
            MemberOrdering::VkcDegDesc,
        ] {
            let out =
                bb::solve(&net, &query, &oracle, &bb::BbOptions::vkc().with_ordering(ordering));
            assert_eq!(
                coverage_counts(&out.groups),
                coverage_counts(&reference.groups),
                "case {case}: ordering {ordering:?} diverged from brute force"
            );
        }
    }
}

#[test]
fn pruning_toggles_stay_exact() {
    let mut rng = SeededRng::seed_from_u64(0x9121);
    for case in 0..64 {
        let n = rng.gen_range(4..16usize);
        let density = rng.gen_range(0.05..0.5);
        let seed = rng.gen_range(0u64..1000);
        let k = rng.gen_range(0u32..3);
        let net = random_network(n, density, 5, 3, seed);
        let query = KtgQuery::new(random_query(&net, 3, seed), 3, k, 2).expect("valid");
        let oracle = ExactOracle::build(net.graph());
        let reference = brute::solve(&net, &query, &oracle);
        for (kp, kf) in [(true, true), (false, true), (true, false), (false, false)] {
            let opts = bb::BbOptions {
                keyword_pruning: kp,
                kline_filtering: kf,
                ..bb::BbOptions::vkc_deg()
            };
            let out = bb::solve(&net, &query, &oracle, &opts);
            assert_eq!(
                coverage_counts(&out.groups),
                coverage_counts(&reference.groups),
                "case {case}: kp={kp} kf={kf}"
            );
        }
    }
}

#[test]
fn results_are_always_feasible() {
    let mut rng = SeededRng::seed_from_u64(0xFEA5);
    for case in 0..64 {
        let n = rng.gen_range(4..20usize);
        let density = rng.gen_range(0.05..0.6);
        let seed = rng.gen_range(0u64..1000);
        let p = rng.gen_range(2..5usize);
        let k = rng.gen_range(0u32..4);
        let net = random_network(n, density, 6, 3, seed);
        let query = KtgQuery::new(random_query(&net, 4, seed), p, k, 3).expect("valid");
        let oracle = ExactOracle::build(net.graph());
        let masks = net.compile(query.keywords());
        let out = bb::solve(&net, &query, &oracle, &bb::BbOptions::vkc_deg());
        for g in &out.groups {
            assert_eq!(g.len(), p, "case {case}: group size must be exactly p");
            // Pairwise tenuity.
            for (i, &u) in g.members().iter().enumerate() {
                for &v in &g.members()[i + 1..] {
                    assert!(
                        oracle.farther_than(u, v, k),
                        "case {case}: {u:?} and {v:?} within {k} hops"
                    );
                }
            }
            // Per-member keyword constraint: 0 < QKC(v).
            for &v in g.members() {
                assert!(masks.mask(v) != 0, "case {case}: {v:?} covers no query keyword");
            }
            // Reported mask is the true union.
            let union = g.members().iter().fold(0u64, |m, &v| m | masks.mask(v));
            assert_eq!(g.mask(), union, "case {case}");
        }
        // Descending coverage order.
        for w in out.groups.windows(2) {
            assert!(w[0].coverage_count() >= w[1].coverage_count(), "case {case}");
        }
    }
}

#[test]
fn node_budget_degrades_gracefully() {
    let mut rng = SeededRng::seed_from_u64(0xB0D6);
    for case in 0..64 {
        let n = rng.gen_range(6..16usize);
        let seed = rng.gen_range(0u64..500);
        let net = random_network(n, 0.2, 5, 3, seed);
        let query = KtgQuery::new(random_query(&net, 3, seed), 3, 1, 2).expect("valid");
        let oracle = ExactOracle::build(net.graph());
        let opts = bb::BbOptions { node_budget: Some(3), ..bb::BbOptions::vkc_deg() };
        let out = bb::solve(&net, &query, &oracle, &opts);
        // Whatever is returned must still be feasible.
        for g in &out.groups {
            assert_eq!(g.len(), 3, "case {case}");
        }
        assert!(out.stats.nodes <= 5, "case {case}: budget respected (± the final node)");
    }
}

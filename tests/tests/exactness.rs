//! Property tests: every branch-and-bound variant is **exact**.
//!
//! On arbitrary attributed networks, each algorithm configuration must
//! return groups with the same top-N coverage multiset as brute force,
//! and every returned group must be feasible (size p, pairwise distance
//! > k, every member covering ≥ 1 query keyword).

use ktg_core::{bb, brute, KtgQuery, MemberOrdering};
use ktg_index::{DistanceOracle, ExactOracle};
use ktg_integration_tests::{random_network, random_query};
use proptest::prelude::*;

fn coverage_counts(groups: &[ktg_core::Group]) -> Vec<u32> {
    groups.iter().map(|g| g.coverage_count()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn bb_matches_brute_force(
        n in 4usize..18,
        density in 0.05f64..0.5,
        seed in 0u64..1000,
        p in 2usize..4,
        k in 0u32..4,
        top_n in 1usize..4,
        wq in 2usize..5,
    ) {
        let net = random_network(n, density, 6, 3, seed);
        let query = KtgQuery::new(random_query(&net, wq, seed), p, k, top_n).expect("valid");
        let oracle = ExactOracle::build(net.graph());
        let reference = brute::solve(&net, &query, &oracle);

        for ordering in [
            MemberOrdering::Qkc,
            MemberOrdering::Vkc,
            MemberOrdering::VkcDeg,
            MemberOrdering::VkcDegDesc,
        ] {
            let out = bb::solve(&net, &query, &oracle, &bb::BbOptions::vkc().with_ordering(ordering));
            prop_assert_eq!(
                coverage_counts(&out.groups),
                coverage_counts(&reference.groups),
                "ordering {:?} diverged from brute force", ordering
            );
        }
    }

    #[test]
    fn pruning_toggles_stay_exact(
        n in 4usize..16,
        density in 0.05f64..0.5,
        seed in 0u64..1000,
        k in 0u32..3,
    ) {
        let net = random_network(n, density, 5, 3, seed);
        let query = KtgQuery::new(random_query(&net, 3, seed), 3, k, 2).expect("valid");
        let oracle = ExactOracle::build(net.graph());
        let reference = brute::solve(&net, &query, &oracle);
        for (kp, kf) in [(true, true), (false, true), (true, false), (false, false)] {
            let opts = bb::BbOptions {
                keyword_pruning: kp,
                kline_filtering: kf,
                ..bb::BbOptions::vkc_deg()
            };
            let out = bb::solve(&net, &query, &oracle, &opts);
            prop_assert_eq!(
                coverage_counts(&out.groups),
                coverage_counts(&reference.groups),
                "kp={} kf={}", kp, kf
            );
        }
    }

    #[test]
    fn results_are_always_feasible(
        n in 4usize..20,
        density in 0.05f64..0.6,
        seed in 0u64..1000,
        p in 2usize..5,
        k in 0u32..4,
    ) {
        let net = random_network(n, density, 6, 3, seed);
        let query = KtgQuery::new(random_query(&net, 4, seed), p, k, 3).expect("valid");
        let oracle = ExactOracle::build(net.graph());
        let masks = net.compile(query.keywords());
        let out = bb::solve(&net, &query, &oracle, &bb::BbOptions::vkc_deg());
        for g in &out.groups {
            prop_assert_eq!(g.len(), p, "group size must be exactly p");
            // Pairwise tenuity.
            for (i, &u) in g.members().iter().enumerate() {
                for &v in &g.members()[i + 1..] {
                    prop_assert!(
                        oracle.farther_than(u, v, k),
                        "{:?} and {:?} within {} hops", u, v, k
                    );
                }
            }
            // Per-member keyword constraint: 0 < QKC(v).
            for &v in g.members() {
                prop_assert!(masks.mask(v) != 0, "{:?} covers no query keyword", v);
            }
            // Reported mask is the true union.
            let union = g.members().iter().fold(0u64, |m, &v| m | masks.mask(v));
            prop_assert_eq!(g.mask(), union);
        }
        // Descending coverage order.
        for w in out.groups.windows(2) {
            prop_assert!(w[0].coverage_count() >= w[1].coverage_count());
        }
    }

    #[test]
    fn node_budget_degrades_gracefully(
        n in 6usize..16,
        seed in 0u64..500,
    ) {
        let net = random_network(n, 0.2, 5, 3, seed);
        let query = KtgQuery::new(random_query(&net, 3, seed), 3, 1, 2).expect("valid");
        let oracle = ExactOracle::build(net.graph());
        let opts = bb::BbOptions { node_budget: Some(3), ..bb::BbOptions::vkc_deg() };
        let out = bb::solve(&net, &query, &oracle, &opts);
        // Whatever is returned must still be feasible.
        for g in &out.groups {
            prop_assert_eq!(g.len(), 3);
        }
        prop_assert!(out.stats.nodes <= 5, "budget respected (± the final node)");
    }
}

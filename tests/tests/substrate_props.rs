//! Property tests for the substrate crates: the hand-rolled containers
//! and the query-compilation pipeline are checked against straightforward
//! reference models.

use ktg_common::{EpochMarker, FixedBitSet, FxHashMap, TopN, VertexId};
use ktg_integration_tests::random_network;
use ktg_keywords::{coverage, KeywordId, QueryKeywords};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn topn_matches_sort_reference(
        items in proptest::collection::vec(0i64..1000, 0..80),
        capacity in 1usize..10,
    ) {
        let mut top = TopN::new(capacity);
        for &x in &items {
            top.offer(x);
        }
        let got = top.into_sorted_desc();
        let mut expected = items.clone();
        expected.sort_by(|a, b| b.cmp(a));
        expected.truncate(capacity);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn fixed_bitset_matches_btreeset(
        ops in proptest::collection::vec((0usize..200, proptest::bool::ANY), 0..200),
    ) {
        let mut bs = FixedBitSet::new(200);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (i, insert) in ops {
            if insert {
                bs.insert(i);
                model.insert(i);
            } else {
                bs.remove(i);
                model.remove(&i);
            }
        }
        prop_assert_eq!(bs.count_ones(), model.len());
        let got: Vec<usize> = bs.iter_ones().collect();
        let expected: Vec<usize> = model.into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn epoch_marker_matches_set_with_resets(
        ops in proptest::collection::vec(proptest::option::of(0usize..50), 0..300),
    ) {
        // `None` = reset, `Some(i)` = mark i.
        let mut em = EpochMarker::new(50);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for op in ops {
            match op {
                None => {
                    em.reset();
                    model.clear();
                }
                Some(i) => {
                    let fresh = em.mark(i);
                    prop_assert_eq!(fresh, model.insert(i), "mark({}) freshness", i);
                }
            }
        }
        for i in 0..50 {
            prop_assert_eq!(em.is_marked(i), model.contains(&i), "slot {}", i);
        }
    }

    #[test]
    fn fxhashmap_matches_btreemap(
        ops in proptest::collection::vec((0u64..100, 0i32..100, proptest::bool::ANY), 0..200),
    ) {
        let mut fx: FxHashMap<u64, i32> = FxHashMap::default();
        let mut model: BTreeMap<u64, i32> = BTreeMap::new();
        for (k, v, insert) in ops {
            if insert {
                prop_assert_eq!(fx.insert(k, v), model.insert(k, v));
            } else {
                prop_assert_eq!(fx.remove(&k), model.remove(&k));
            }
        }
        prop_assert_eq!(fx.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(fx.get(k), Some(v));
        }
    }

    #[test]
    fn query_compile_matches_naive_scan(
        n in 1usize..30,
        seed in 0u64..500,
        wq in 1usize..6,
    ) {
        let net = random_network(n, 0.2, 8, 4, seed);
        let ids: Vec<KeywordId> = (0..wq as u32).map(KeywordId).collect();
        let query = QueryKeywords::new(ids.clone()).expect("valid");
        let masks = net.compile(&query);
        for v in 0..n {
            let v = VertexId::new(v);
            // Naive recomputation straight from the keyword arena.
            let mut expected = 0u64;
            for (bit, k) in ids.iter().enumerate() {
                if net.keywords().has_keyword(v, *k) {
                    expected |= 1 << bit;
                }
            }
            prop_assert_eq!(masks.mask(v), expected, "vertex {:?}", v);
        }
        // Candidates = exactly the nonzero-mask vertices, sorted.
        let expected_cands: Vec<VertexId> = (0..n)
            .map(VertexId::new)
            .filter(|&v| masks.mask(v) != 0)
            .collect();
        prop_assert_eq!(masks.candidates(), expected_cands.as_slice());
    }

    #[test]
    fn coverage_identities(mask_a in any::<u64>(), mask_b in any::<u64>(), covered in any::<u64>()) {
        // VKC decomposition: new + already-covered = total.
        let total = coverage::covered_count(mask_a);
        let new = coverage::vkc_count(mask_a, covered);
        let old = coverage::covered_count(mask_a & covered);
        prop_assert_eq!(new + old, total);
        // Group mask is commutative and monotone.
        prop_assert_eq!(coverage::group_mask([mask_a, mask_b]), coverage::group_mask([mask_b, mask_a]));
        prop_assert!(coverage::covered_count(mask_a | mask_b) >= total);
        // VKC against a superset-covered mask never grows.
        prop_assert!(coverage::vkc_count(mask_a, covered | mask_b) <= new);
    }

    #[test]
    fn group_qkc_bounded_by_member_sum(
        masks in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        let union = coverage::covered_count(coverage::group_mask(masks.iter().copied()));
        let sum: u32 = masks.iter().map(|&m| coverage::covered_count(m)).sum();
        prop_assert!(union as u64 <= (sum as u64));
        let max_single = masks.iter().map(|&m| coverage::covered_count(m)).max().unwrap();
        prop_assert!(union >= max_single);
    }
}

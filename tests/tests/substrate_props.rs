//! Randomized tests for the substrate crates: the hand-rolled containers
//! and the query-compilation pipeline are checked against straightforward
//! reference models over seeded random inputs (deterministic — rerun a
//! failing case by its printed seed).

use ktg_common::{EpochMarker, FixedBitSet, FxHashMap, SeededRng, TopN, VertexId};
use ktg_integration_tests::random_network;
use ktg_keywords::{coverage, KeywordId, QueryKeywords};
use std::collections::{BTreeMap, BTreeSet};

#[test]
fn topn_matches_sort_reference() {
    let mut rng = SeededRng::seed_from_u64(0x70B1);
    for case in 0..128 {
        let len = rng.gen_range(0..80usize);
        let items: Vec<i64> = (0..len).map(|_| rng.gen_range(0i64..1000)).collect();
        let capacity = rng.gen_range(1..10usize);
        let mut top = TopN::new(capacity);
        for &x in &items {
            top.offer(x);
        }
        let got = top.into_sorted_desc();
        let mut expected = items.clone();
        expected.sort_by(|a, b| b.cmp(a));
        expected.truncate(capacity);
        assert_eq!(got, expected, "case {case}");
    }
}

#[test]
fn fixed_bitset_matches_btreeset() {
    let mut rng = SeededRng::seed_from_u64(0xB175E7);
    for case in 0..128 {
        let ops = rng.gen_range(0..200usize);
        let mut bs = FixedBitSet::new(200);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for _ in 0..ops {
            let i = rng.gen_range(0..200usize);
            if rng.gen_bool(0.5) {
                bs.insert(i);
                model.insert(i);
            } else {
                bs.remove(i);
                model.remove(&i);
            }
        }
        assert_eq!(bs.count_ones(), model.len(), "case {case}");
        let got: Vec<usize> = bs.iter_ones().collect();
        let expected: Vec<usize> = model.into_iter().collect();
        assert_eq!(got, expected, "case {case}");
    }
}

#[test]
fn epoch_marker_matches_set_with_resets() {
    let mut rng = SeededRng::seed_from_u64(0xE70C);
    for case in 0..128 {
        let ops = rng.gen_range(0..300usize);
        let mut em = EpochMarker::new(50);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for _ in 0..ops {
            // ~1 in 8 operations is a reset; the rest mark a random slot.
            if rng.gen_bool(0.125) {
                em.reset();
                model.clear();
            } else {
                let i = rng.gen_range(0..50usize);
                let fresh = em.mark(i);
                assert_eq!(fresh, model.insert(i), "case {case}: mark({i}) freshness");
            }
        }
        for i in 0..50 {
            assert_eq!(em.is_marked(i), model.contains(&i), "case {case}: slot {i}");
        }
    }
}

#[test]
fn fxhashmap_matches_btreemap() {
    let mut rng = SeededRng::seed_from_u64(0xF0C5ED);
    for case in 0..128 {
        let ops = rng.gen_range(0..200usize);
        let mut fx: FxHashMap<u64, i32> = FxHashMap::default();
        let mut model: BTreeMap<u64, i32> = BTreeMap::new();
        for _ in 0..ops {
            let k = rng.gen_range(0u64..100);
            let v = rng.gen_range(0i32..100);
            if rng.gen_bool(0.5) {
                assert_eq!(fx.insert(k, v), model.insert(k, v), "case {case}");
            } else {
                assert_eq!(fx.remove(&k), model.remove(&k), "case {case}");
            }
        }
        assert_eq!(fx.len(), model.len(), "case {case}");
        for (k, v) in &model {
            assert_eq!(fx.get(k), Some(v), "case {case}");
        }
    }
}

#[test]
fn query_compile_matches_naive_scan() {
    let mut rng = SeededRng::seed_from_u64(0xC0117);
    for case in 0..128 {
        let n = rng.gen_range(1..30usize);
        let seed = rng.gen_range(0u64..500);
        let wq = rng.gen_range(1..6usize);
        let net = random_network(n, 0.2, 8, 4, seed);
        let ids: Vec<KeywordId> = (0..wq as u32).map(KeywordId).collect();
        let query = QueryKeywords::new(ids.clone()).expect("valid");
        let masks = net.compile(&query);
        for v in 0..n {
            let v = VertexId::new(v);
            // Naive recomputation straight from the keyword arena.
            let mut expected = 0u64;
            for (bit, k) in ids.iter().enumerate() {
                if net.keywords().has_keyword(v, *k) {
                    expected |= 1 << bit;
                }
            }
            assert_eq!(masks.mask(v), expected, "case {case}: vertex {v:?}");
        }
        // Candidates = exactly the nonzero-mask vertices, sorted.
        let expected_cands: Vec<VertexId> = (0..n)
            .map(VertexId::new)
            .filter(|&v| masks.mask(v) != 0)
            .collect();
        assert_eq!(masks.candidates(), expected_cands.as_slice(), "case {case}");
    }
}

#[test]
fn coverage_identities() {
    let mut rng = SeededRng::seed_from_u64(0xC0FE);
    for case in 0..256 {
        let mask_a = rng.next_u64();
        let mask_b = rng.next_u64();
        let covered = rng.next_u64();
        // VKC decomposition: new + already-covered = total.
        let total = coverage::covered_count(mask_a);
        let new = coverage::vkc_count(mask_a, covered);
        let old = coverage::covered_count(mask_a & covered);
        assert_eq!(new + old, total, "case {case}");
        // Group mask is commutative and monotone.
        assert_eq!(
            coverage::group_mask([mask_a, mask_b]),
            coverage::group_mask([mask_b, mask_a]),
            "case {case}"
        );
        assert!(coverage::covered_count(mask_a | mask_b) >= total, "case {case}");
        // VKC against a superset-covered mask never grows.
        assert!(coverage::vkc_count(mask_a, covered | mask_b) <= new, "case {case}");
    }
}

#[test]
fn group_qkc_bounded_by_member_sum() {
    let mut rng = SeededRng::seed_from_u64(0x6B0);
    for case in 0..256 {
        let len = rng.gen_range(1..6usize);
        let masks: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
        let union = coverage::covered_count(coverage::group_mask(masks.iter().copied()));
        let sum: u32 = masks.iter().map(|&m| coverage::covered_count(m)).sum();
        assert!(union as u64 <= sum as u64, "case {case}");
        let max_single = masks.iter().map(|&m| coverage::covered_count(m)).max().unwrap();
        assert!(union >= max_single, "case {case}");
    }
}

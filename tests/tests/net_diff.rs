//! Differential tests: the TCP serving front-end is **byte-identical**
//! to `ktg batch`.
//!
//! `ktg serve` (DESIGN.md §15) claims the network layer adds framing and
//! scheduling but never touches answers: every response block over a
//! single sequential connection renders exactly the bytes `ktg batch`
//! would print for the same workload item at the same position —
//! `[cached]` markers, `[degraded(...)]` tags, and `overloaded` shed
//! lines included. These suites drive a real in-process server over
//! loopback sockets and hold its collected response text equal to the
//! batch renderer's output for the same script, across worker counts,
//! cache settings, injected fault schedules, and degraded/overloaded
//! tagging. Under `KTG_VERIFY=1` (CI) every served answer additionally
//! passes the checked-mode result audit inside the session.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::{Mutex, OnceLock};

use ktg_cli::serve::{start, ServeConfig, ServerHandle, WalConfig};
use ktg_common::fault::{self, FaultConfig, FaultSite};
use ktg_common::net::{write_line, Frame, LineReader};
use ktg_common::SeededRng;
use ktg_core::serve::{parse_workload, ServeOptions, ServeSession};
use ktg_core::{bb, AttributedGraph};
use ktg_index::wal::WalSync;
use ktg_integration_tests::{random_network, random_query};

/// The fault registry is process-global and the server shares this
/// process; every test serializes on this so one test's armed schedule
/// never bleeds into another's expected bytes.
fn fault_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Disarms the registry when dropped, so an assertion failure inside a
/// fault-armed test cannot leak injection into the rest of the binary.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        fault::set_config(None);
    }
}

/// A mixed wire script over `net`: a small pool of distinct KTG/DKTG
/// query lines with Zipf-free repeats (so the cache has something to
/// do), interleaved with edge updates, comments, and blank lines.
fn wire_script(net: &AttributedGraph, seed: u64) -> Vec<String> {
    let mut rng = SeededRng::seed_from_u64(seed);
    let pool: Vec<String> = (0..4)
        .map(|i| {
            let kws = random_query(net, 3, seed ^ (i as u64 + 1));
            let terms: Vec<&str> =
                kws.ids().iter().map(|&id| net.vocab().term(id)).collect();
            let terms = terms.join(",");
            if i % 2 == 0 {
                format!("ktg terms={terms} p=3 k=2 n=3")
            } else {
                format!("dktg terms={terms} p=3 k=2 n=3 gamma=0.5")
            }
        })
        .collect();
    let mut script = vec!["# net_diff differential script".to_string()];
    for round in 0..3u64 {
        for _ in 0..3 {
            script.push(pool[rng.gen_range(0..pool.len())].clone());
        }
        script.push(String::new());
        // Same endpoints per round parity: inserts later removed, so
        // both applied and no-op update renderings appear on the wire.
        script.push(if round % 2 == 0 { "insert 0 9" } else { "remove 0 9" }.to_string());
    }
    script
}

/// What `ktg batch` prints for this script's items (minus the batch
/// header/summary lines the server has no equivalent of): a fresh
/// single-threaded session replay through the shared outcome renderer.
fn batch_rendering(net: &AttributedGraph, script: &[String], options: &ServeOptions) -> String {
    let text = script.join("\n");
    let items = parse_workload(&text, net).expect("script parses");
    let mut session = ServeSession::new(net.clone(), options.clone());
    let outcomes = session.run(&items);
    let mut out = Vec::new();
    for (i, outcome) in outcomes.iter().enumerate() {
        ktg_cli::commands::write_outcome(&mut out, i + 1, outcome, options.max_inflight)
            .expect("render outcome");
    }
    String::from_utf8(out).expect("renderer emits UTF-8")
}

fn boot(net: &AttributedGraph, workers: usize, options: ServeOptions) -> ServerHandle {
    let cfg = ServeConfig { workers, options, ..ServeConfig::default() };
    start(net.clone(), cfg).expect("bind loopback server")
}

fn connect(handle: &ServerHandle) -> (TcpStream, LineReader<TcpStream>) {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let writer = stream.try_clone().expect("clone stream");
    (writer, LineReader::new(stream, 1 << 20))
}

/// Sends one request line and returns its `.`-terminated response block
/// (terminator stripped, lines newline-joined — empty string for the
/// empty block).
fn request(writer: &mut TcpStream, reader: &mut LineReader<TcpStream>, line: &str) -> String {
    write_line(writer, line).expect("send request");
    writer.flush().expect("flush request");
    let mut block = String::new();
    loop {
        match reader.read_frame().expect("read response frame") {
            Frame::Line(l) if l == "." => return block,
            Frame::Line(l) => {
                block.push_str(&l);
                block.push('\n');
            }
            other => panic!("unexpected frame mid-response: {other:?}"),
        }
    }
}

/// Replays the whole script over one sequential connection, returning
/// the concatenated response text.
fn replay(handle: &ServerHandle, script: &[String]) -> String {
    let (mut writer, mut reader) = connect(handle);
    let mut out = String::new();
    for line in script {
        out.push_str(&request(&mut writer, &mut reader, line));
    }
    out
}

/// The tentpole claim: across server worker counts and cache settings,
/// a sequential TCP replay's bytes equal the batch renderer's bytes for
/// the same script — `[cached]` markers included, because a sequential
/// connection and a single-threaded batch replay hit the cache at
/// exactly the same positions.
#[test]
fn tcp_responses_match_batch_rendering_across_configs() {
    let _guard = fault_lock().lock().unwrap();
    let net = random_network(26, 0.22, 8, 4, 17);
    let script = wire_script(&net, 0x5EED);
    for use_cache in [true, false] {
        for workers in [1usize, 4] {
            let options =
                ServeOptions { threads: 1, use_cache, ..ServeOptions::default() };
            let expected = batch_rendering(&net, &script, &options);
            let handle = boot(&net, workers, options);
            let got = replay(&handle, &script);
            assert_eq!(
                expected, got,
                "cache={use_cache}, workers={workers}: TCP replay diverged \
                 from the batch rendering"
            );
            if use_cache {
                assert!(got.contains("[cached]"), "repeat-bearing script never hit");
            }
            handle.shutdown();
            handle.join().expect("server thread");
        }
    }
}

/// Fault-schedule axis: with deterministic injection armed (every site
/// except `io`), the server's retry-once recovery must absorb every
/// injected panic — the parse site included, which only the network
/// path exercises per request — and keep responses byte-identical to
/// the fault-free bytes. The `io` site is deliberately excluded: its
/// contract is that a failed response write *closes the connection*
/// (counted in `/stats`), which is the one fault a byte-identical
/// replay cannot absorb; `response_write_errors_are_counted` covers it.
#[test]
fn tcp_responses_are_byte_identical_under_injected_faults() {
    let _guard = fault_lock().lock().unwrap();
    let _disarm = Disarm;
    let net = random_network(24, 0.25, 8, 4, 29);
    let script = wire_script(&net, 0xFA07);
    let options = ServeOptions { threads: 1, ..ServeOptions::default() };

    fault::set_config(None);
    let expected = batch_rendering(&net, &script, &options);
    let sites: Vec<FaultSite> = fault::ALL_SITES
        .iter()
        .copied()
        .filter(|site| *site != FaultSite::ServeIo)
        .collect();
    for seed in [3u64, 11] {
        for rate in [1.0, 0.5] {
            fault::set_config(Some(FaultConfig::new(&sites, rate, seed)));
            let handle = boot(&net, 2, options.clone());
            let got = replay(&handle, &script);
            assert_eq!(
                expected, got,
                "seed={seed}, rate={rate}: fault-armed TCP replay diverged"
            );
            assert!(!got.contains("failed:"), "injected fault survived the retry");
            handle.shutdown();
            handle.join().expect("server thread");
        }
    }
}

/// Degraded axis: a one-node budget degrades every nontrivial search,
/// and the server's `[degraded(...)]` tagging must still render exactly
/// the batch bytes for the same configuration.
#[test]
fn degraded_answers_render_identically_over_tcp() {
    let _guard = fault_lock().lock().unwrap();
    let net = random_network(28, 0.2, 8, 4, 41);
    let script = wire_script(&net, 0xB4D9);
    let mut engine = bb::BbOptions::vkc_deg();
    engine.node_budget = Some(1);
    let options = ServeOptions { threads: 1, engine, ..ServeOptions::default() };
    let expected = batch_rendering(&net, &script, &options);
    assert!(expected.contains("[degraded("), "one-node budget degraded nothing");
    let handle = boot(&net, 2, options);
    let got = replay(&handle, &script);
    assert_eq!(expected, got, "degraded TCP replay diverged from the batch rendering");
    handle.shutdown();
    handle.join().expect("server thread");
}

/// Overloaded axis: a draining server sheds queries with exactly the
/// batch's `overloaded` line (same admission bound in the message, same
/// lineno numbering), keeps applying updates, and resumes answering
/// after `/resume`. `/stats` reports the shed count.
#[test]
fn drained_server_sheds_with_the_batch_overloaded_line() {
    let _guard = fault_lock().lock().unwrap();
    let net = random_network(22, 0.25, 8, 4, 53);
    let script = wire_script(&net, 0x0DD5);
    let query = script
        .iter()
        .find(|l| l.starts_with("ktg "))
        .expect("script has a ktg line")
        .clone();
    let options = ServeOptions { threads: 1, max_inflight: 2, ..ServeOptions::default() };
    let handle = boot(&net, 2, options);
    let (mut writer, mut reader) = connect(&handle);

    // A sequential connection never exceeds one in-flight query, so the
    // gauge alone cannot shed here: answered normally.
    let block = request(&mut writer, &mut reader, &query);
    assert!(block.starts_with("[1] ktg:"), "{block:?}");
    // Normalize: guarantee edge 0–9 is absent so the drained insert
    // below is deterministically `applied`.
    let block = request(&mut writer, &mut reader, "remove 0 9");
    assert!(block.starts_with("[2] update:"), "{block:?}");

    let block = request(&mut writer, &mut reader, "/drain");
    assert!(block.starts_with("draining"), "{block:?}");
    // Shed responses are the batch renderer's overloaded line verbatim,
    // and still consume item positions, exactly like a shed batch item.
    let block = request(&mut writer, &mut reader, &query);
    assert_eq!(block, "[3] overloaded: shed by --max-inflight 2\n");
    let block = request(&mut writer, &mut reader, "insert 0 9");
    assert_eq!(block, "[4] update: applied\n", "updates must not be shed");
    let block = request(&mut writer, &mut reader, &query);
    assert_eq!(block, "[5] overloaded: shed by --max-inflight 2\n");

    let block = request(&mut writer, &mut reader, "/resume");
    assert!(block.starts_with("resumed"), "{block:?}");
    let block = request(&mut writer, &mut reader, &query);
    assert!(block.starts_with("[6] ktg:"), "post-resume answer expected: {block:?}");

    // The stats line is one flat JSON object counting the shed items.
    let block = request(&mut writer, &mut reader, "/stats");
    assert!(block.starts_with("stats: {"), "{block:?}");
    for field in ["\"overloaded\":2", "\"requests\":6", "\"p95_ns\":", "\"epoch\":"] {
        assert!(block.contains(field), "missing {field} in {block:?}");
    }

    handle.shutdown();
    handle.join().expect("server thread");
}

/// Durability axis: a WAL-backed server that dies abruptly halfway
/// through a script and is recovered by a fresh process must serve the
/// remainder byte-identically to a server that never crashed but holds
/// the same *durable* state — the first half's updates, a fresh (cold)
/// result cache. Both halves are compared against the shared batch
/// renderer, so the recovered process's response bytes are transitively
/// the uninterrupted batch bytes for the same items over the same graph
/// state.
#[test]
fn recovered_server_serves_byte_identically_after_a_crash() {
    let _guard = fault_lock().lock().unwrap();
    let dir = std::env::temp_dir()
        .join(format!("ktg-net-diff-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let wal_cfg = WalConfig {
        path: dir.join("updates.wal"),
        sync: WalSync::Always,
        checkpoint_every: 0,
        bundle: None,
    };

    let net = random_network(26, 0.22, 8, 4, 61);
    let script = wire_script(&net, 0x9EC0);
    let half = script.len() / 2;
    let options = ServeOptions { threads: 1, ..ServeOptions::default() };

    // Phase 1: serve the first half, then die with no farewell — every
    // accepted update was WAL-appended (and fsynced) before it was
    // applied, so the log alone carries the state forward.
    let expected = batch_rendering(&net, &script[..half], &options);
    let cfg = ServeConfig {
        workers: 2,
        options: options.clone(),
        wal: Some(wal_cfg.clone()),
        ..ServeConfig::default()
    };
    let handle = start(net.clone(), cfg).expect("bind first server");
    let got = replay(&handle, &script[..half]);
    assert_eq!(expected, got, "pre-crash replay diverged from the batch rendering");
    handle.shutdown();
    handle.join().expect("server thread");

    // The never-crashed reference: a fresh session holding exactly the
    // durable state (first-half updates applied, cold cache), rendering
    // the second half through the shared batch renderer.
    let first_items =
        parse_workload(&script[..half].join("\n"), &net).expect("first half parses");
    let updates: Vec<_> = first_items.into_iter().filter(|i| !i.is_query()).collect();
    let mut reference = ServeSession::new(net.clone(), options.clone());
    reference.run(&updates);
    let second_items =
        parse_workload(&script[half..].join("\n"), &net).expect("second half parses");
    let outcomes = reference.run(&second_items);
    let mut out = Vec::new();
    for (i, outcome) in outcomes.iter().enumerate() {
        ktg_cli::commands::write_outcome(&mut out, i + 1, outcome, options.max_inflight)
            .expect("render outcome");
    }
    let expected = String::from_utf8(out).expect("renderer emits UTF-8");

    // Phase 2: a fresh process — a pristine copy of the network plus
    // the surviving log — finishes the script.
    let cfg = ServeConfig {
        workers: 2,
        options,
        wal: Some(wal_cfg),
        ..ServeConfig::default()
    };
    let handle = start(net.clone(), cfg).expect("bind recovered server");
    assert!(handle.recovered().expect("wal attached").replayed > 0, "nothing replayed");
    let (mut writer, mut reader) = connect(&handle);
    for _ in 0..500 {
        if request(&mut writer, &mut reader, "/health").contains("\"state\":\"serving\"")
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let got = replay(&handle, &script[half..]);
    assert_eq!(expected, got, "post-recovery replay diverged from the reference");
    handle.shutdown();
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

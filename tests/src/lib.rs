//! Shared helpers for the workspace integration & property tests.
//!
//! The randomized suites need "arbitrary attributed social networks": a
//! seeded builder here keeps each test a deterministic function of a
//! `(n, edge seed, keyword seed)` triple instead of raw adjacency
//! matrices, so any failing case replays exactly.

#![forbid(unsafe_code)]

use ktg_common::SeededRng;
use ktg_core::AttributedGraph;
use ktg_graph::{CsrGraph, GraphBuilder, VertexId};
use ktg_keywords::{KeywordId, QueryKeywords, VertexKeywordsBuilder, Vocabulary};

/// Deterministically builds a random graph: `n` vertices, each possible
/// edge present with probability `density`.
pub fn random_graph(n: usize, density: f64, seed: u64) -> CsrGraph {
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(density) {
                b.add_edge(VertexId::new(u), VertexId::new(v)).expect("in range");
            }
        }
    }
    b.build()
}

/// Deterministically builds a random attributed network over `vocab_size`
/// keywords, each vertex carrying `0..=max_kw` of them.
pub fn random_network(
    n: usize,
    density: f64,
    vocab_size: usize,
    max_kw: usize,
    seed: u64,
) -> AttributedGraph {
    let graph = random_graph(n, density, seed);
    let vocab = Vocabulary::synthetic(vocab_size);
    let mut rng = SeededRng::seed_from_u64(seed ^ 0xABCD);
    let mut kb = VertexKeywordsBuilder::new(n);
    for v in 0..n {
        let count = rng.gen_range(0..=max_kw.min(vocab_size));
        for _ in 0..count {
            kb.add(VertexId::new(v), KeywordId(rng.gen_range(0..vocab_size as u32)));
        }
    }
    AttributedGraph::new(graph, vocab, kb.build())
}

/// A query keyword set of `size` keywords drawn from the network's
/// vocabulary (uniformly; the workload crate handles frequency weighting).
pub fn random_query(net: &AttributedGraph, size: usize, seed: u64) -> QueryKeywords {
    let mut rng = SeededRng::seed_from_u64(seed ^ 0x5EED);
    let vocab = net.vocab().len();
    let size = size.min(vocab).max(1);
    let mut ids = Vec::with_capacity(size);
    while ids.len() < size {
        let k = KeywordId(rng.gen_range(0..vocab as u32));
        if !ids.contains(&k) {
            ids.push(k);
        }
    }
    QueryKeywords::new(ids).expect("validated size")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_deterministic() {
        assert_eq!(random_graph(10, 0.3, 5), random_graph(10, 0.3, 5));
        assert_ne!(random_graph(10, 0.3, 5), random_graph(10, 0.3, 6));
    }

    #[test]
    fn random_network_shapes() {
        let net = random_network(12, 0.25, 6, 3, 1);
        assert_eq!(net.num_vertices(), 12);
        assert_eq!(net.vocab().len(), 6);
    }

    #[test]
    fn random_query_size() {
        let net = random_network(12, 0.25, 6, 3, 1);
        assert_eq!(random_query(&net, 4, 9).len(), 4);
        assert_eq!(random_query(&net, 99, 9).len(), 6, "clamped to vocab");
    }
}

//! Dynamic NLRNL maintenance (paper §V-B): keep the index consistent
//! across edge insertions and deletions without full rebuilds.
//!
//! Simulates a living social network: friendships form and dissolve, and
//! after every mutation the maintained index must agree with a freshly
//! built one on a sample of distance checks.
//!
//! ```text
//! cargo run --release -p ktg-examples --bin dynamic_index
//! ```

use ktg_common::SeededRng;
use ktg_datasets::gen;
use ktg_graph::{DynamicGraph, VertexId};
use ktg_index::{DistanceOracle, NlrnlIndex};

fn main() {
    let csr = gen::watts_strogatz(300, 6, 0.1, 13);
    let mut graph = DynamicGraph::from_csr(&csr);
    let mut index = NlrnlIndex::build(&graph);
    let mut rng = SeededRng::seed_from_u64(99);
    let n = graph.num_vertices() as u32;

    println!("maintaining NLRNL over 20 random edge mutations on a 300-vertex graph");
    for step in 0..20 {
        let u = VertexId(rng.gen_range(0..n));
        let v = VertexId(rng.gen_range(0..n));
        if u == v {
            continue;
        }
        let insert = !graph.has_edge(u, v);
        let update = index.prepare_update(&graph, u, v);
        if insert {
            graph.insert_edge(u, v).expect("in range");
        } else {
            graph.remove_edge(u, v).expect("in range");
        }
        index.apply_update(&graph, update);

        // Spot-check against a fresh rebuild.
        let fresh = NlrnlIndex::build(&graph);
        let mut checked = 0;
        for _ in 0..200 {
            let a = VertexId(rng.gen_range(0..n));
            let b = VertexId(rng.gen_range(0..n));
            let k = rng.gen_range(0..6u32);
            assert_eq!(
                index.farther_than(a, b, k),
                fresh.farther_than(a, b, k),
                "mismatch after step {step} ({a}, {b}, k={k})"
            );
            checked += 1;
        }
        println!(
            "  step {step:2}: {} ({u}, {v}) — {checked} spot checks OK",
            if insert { "insert" } else { "remove" }
        );
    }
    println!("maintained index matched a fresh rebuild after every mutation.");
}

//! Diversified reviewer panels: the DKTG query (paper §VI).
//!
//! A conference needs several *disjoint* review panels for related
//! submissions. Plain KTG returns heavily overlapping top-N groups; if
//! one shared member becomes unavailable, every panel breaks.
//! DKTG-Greedy trades a little coverage for fully disjoint panels.
//!
//! ```text
//! cargo run --release -p ktg-examples --bin diversified_panels
//! ```

use ktg_core::dktg::{self, DktgQuery};
use ktg_core::{bb, KtgQuery};
use ktg_datasets::{DatasetProfile, QueryGen};
use ktg_index::NlrnlIndex;

fn main() {
    let net = DatasetProfile::Brightkite.instantiate(200, 21);
    println!("network: {}", ktg_graph::stats::summary(net.graph()));
    let keywords = QueryGen::new(&net, 5).query(6).expect("example workload");

    let query = KtgQuery::new(keywords, 3, 2, 4).expect("valid");
    let index = NlrnlIndex::build(net.graph());

    // Plain KTG: watch the overlap.
    let ktg = bb::solve(&net, &query, &index, &bb::BbOptions::vkc_deg());
    println!("\nKTG top-{} (overlapping is allowed):", query.n());
    for g in &ktg.groups {
        println!(
            "  {:?} coverage {}/6",
            g.members().iter().map(|v| v.0).collect::<Vec<_>>(),
            g.coverage_count()
        );
    }
    println!("  dL(RG) = {:.3}", dktg::diversity_set(&ktg.groups));

    // DKTG-Greedy: disjoint panels.
    let dq = DktgQuery::new(query, 0.5).expect("valid gamma");
    let out = dktg::solve(&net, &dq, &index);
    println!("\nDKTG-Greedy (gamma = 0.5):");
    for g in &out.groups {
        println!(
            "  {:?} coverage {}/6",
            g.members().iter().map(|v| v.0).collect::<Vec<_>>(),
            g.coverage_count()
        );
    }
    println!(
        "  dL(RG) = {:.3}, min QKC = {:.3}, score = {:.3} (approx bound {:.3})",
        out.diversity,
        out.min_qkc,
        out.score,
        dktg::approximation_ratio(dq.gamma(), dq.base().keywords().len())
    );
}

//! Quickstart: build a small attributed network, run one KTG query, and
//! print the top groups.
//!
//! ```text
//! cargo run -p ktg-examples --bin quickstart
//! ```

use ktg_core::{bb, AttributedGraph, KtgQuery};
use ktg_graph::CsrGraph;
use ktg_index::BfsOracle;
use ktg_keywords::{VertexKeywordsBuilder, Vocabulary};

fn main() {
    // A 8-person network: two loose clusters bridged by v3-v4.
    let graph = CsrGraph::from_edges(
        8,
        &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (5, 7), (6, 7)],
    )
    .expect("valid edges");

    // Everyone gets a small expertise profile.
    let mut vocab = Vocabulary::new();
    let profiles: [&[&str]; 8] = [
        &["databases", "queries"],
        &["graphs"],
        &["databases"],
        &["machine-learning"],
        &["graphs", "queries"],
        &["databases", "graphs"],
        &["queries"],
        &["machine-learning", "databases"],
    ];
    let mut kb = VertexKeywordsBuilder::new(8);
    for (v, terms) in profiles.iter().enumerate() {
        for term in *terms {
            let k = vocab.intern(term);
            kb.add(ktg_common::VertexId::new(v), k);
        }
    }
    let net = AttributedGraph::new(graph, vocab, kb.build());

    // Find the top-2 groups of 3 people covering {databases, graphs,
    // queries}, pairwise more than 1 hop apart.
    let query = KtgQuery::new(
        net.query_keywords(["databases", "graphs", "queries"]).expect("known terms"),
        3, // group size p
        1, // tenuity constraint k: no two members may be friends
        2, // top N
    )
    .expect("valid query");

    let oracle = BfsOracle::new(net.graph());
    let outcome = bb::solve(&net, &query, &oracle, &bb::BbOptions::vkc_deg());

    println!("top-{} keyword-based socially tenuous groups (p=3, k=1):", query.n());
    for (rank, group) in outcome.groups.iter().enumerate() {
        let members: Vec<String> =
            group.members().iter().map(|&v| net.describe_vertex(v)).collect();
        println!(
            "  #{}: {}  — covers {}/{} query keywords",
            rank + 1,
            members.join("  "),
            group.coverage_count(),
            query.keywords().len()
        );
    }
    println!(
        "search explored {} nodes, pruned {} branches by keyword bound",
        outcome.stats.nodes, outcome.stats.keyword_pruned
    );
}

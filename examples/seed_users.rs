//! Seed-user selection for social advertising (the paper's second
//! motivating scenario, §I): pick p seed users who jointly cover the
//! campaign's product keywords but are pairwise socially distant, so
//! their influence cascades don't overlap.
//!
//! Runs on a scaled Gowalla-profile network and compares tenuity
//! constraints k = 1..3: stricter tenuity spreads the seeds farther
//! apart at (possibly) lower keyword coverage.
//!
//! ```text
//! cargo run --release -p ktg-examples --bin seed_users
//! ```

use ktg_core::{bb, KtgQuery};
use ktg_datasets::{DatasetProfile, QueryGen};
use ktg_graph::{bfs, BfsScratch};
use ktg_index::NlrnlIndex;

fn main() {
    let net = DatasetProfile::Gowalla.instantiate(200, 7);
    println!("campaign network: {}", ktg_graph::stats::summary(net.graph()));

    // The campaign cares about 6 product keywords.
    let keywords = QueryGen::new(&net, 99).query(6).expect("example workload");
    let terms: Vec<&str> = keywords.ids().iter().map(|&k| net.vocab().term(k)).collect();
    println!("product keywords: {}", terms.join(", "));

    let index = NlrnlIndex::build(net.graph());
    let mut scratch = BfsScratch::new(net.num_vertices());

    for k in 1..=3u32 {
        let query = KtgQuery::new(keywords.clone(), 4, k, 1).expect("valid");
        let out = bb::solve(&net, &query, &index, &bb::BbOptions::vkc_deg());
        match out.groups.first() {
            None => println!("k={k}: no feasible seed set of 4"),
            Some(g) => {
                let mut min_hops = u32::MAX;
                for (i, &u) in g.members().iter().enumerate() {
                    for &v in &g.members()[i + 1..] {
                        let d = bfs::distance_bounded(net.graph(), u, v, 64, &mut scratch)
                            .unwrap_or(u32::MAX);
                        min_hops = min_hops.min(d);
                    }
                }
                println!(
                    "k={k}: seeds {:?} cover {}/6 keywords, closest pair {} hops apart",
                    g.members().iter().map(|v| v.0).collect::<Vec<_>>(),
                    g.coverage_count(),
                    min_hops
                );
            }
        }
    }
}

//! Figure 8 case study (example-sized): compare KTG-VKC-DEG,
//! DKTG-Greedy and the TAGQ baseline on the Figure 1 reviewer network.
//!
//! The dataset-scale version lives in the bench crate
//! (`cargo run --release -p ktg-bench --bin case_study`); this example
//! shows the same contrast on the 12-reviewer running example where
//! every number can be verified by hand.
//!
//! ```text
//! cargo run -p ktg-examples --bin case_study
//! ```

use ktg_core::dktg::{self, DktgQuery};
use ktg_core::tagq::{self, TagqOptions};
use ktg_core::{bb, fixtures, KtgQuery};
use ktg_index::ExactOracle;

fn main() {
    let net = fixtures::figure1();
    let query = KtgQuery::new(
        net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).expect("figure 1 terms"),
        3,
        1,
        2,
    )
    .expect("valid");
    let oracle = ExactOracle::build(net.graph());
    let masks = net.compile(query.keywords());

    println!("== KTG-VKC-DEG (union coverage, hard tenuity) ==");
    let ktg = bb::solve(&net, &query, &oracle, &bb::BbOptions::vkc_deg());
    for g in &ktg.groups {
        describe(&net, g.members(), g.coverage_count(), &masks);
    }

    println!("\n== DKTG-Greedy (gamma = 0.5, disjoint panels) ==");
    let dq = DktgQuery::new(query.clone(), 0.5).expect("gamma");
    let dk = dktg::solve(&net, &dq, &oracle);
    for g in &dk.groups {
        describe(&net, g.members(), g.coverage_count(), &masks);
    }
    println!("   dL = {:.2}, score = {:.2}", dk.diversity, dk.score);

    println!("\n== TAGQ (average coverage; zero-coverage members possible) ==");
    let tq = tagq::solve(&net, &query, &oracle, &TagqOptions::default());
    for tg in &tq.groups {
        describe(&net, tg.group.members(), tg.group.coverage_count(), &masks);
        for &v in tg.group.members() {
            if masks.mask(v) == 0 {
                println!("   !! u{} covers NO query keyword — the flaw KTG fixes", v.0);
            }
        }
    }
}

fn describe(
    net: &ktg_core::AttributedGraph,
    members: &[ktg_common::VertexId],
    count: u32,
    masks: &ktg_keywords::QueryMasks,
) {
    let names: Vec<String> = members
        .iter()
        .map(|&v| format!("{} ({} query kw)", net.describe_vertex(v), masks.mask(v).count_ones()))
        .collect();
    println!("  group covers {count}/5: {}", names.join(", "));
}

//! The paper's running example (Figure 1): selecting reviewers for a
//! paper whose topics are {SN, QP, DQ, GQ, GD}.
//!
//! Reproduces §IV's walk-through query ⟨W_Q, p=3, k=1, N=2⟩ over the
//! reconstructed reviewer network, with all three exact algorithm
//! variants, and shows why u6/u7 (direct collaborators) never co-occur.
//!
//! ```text
//! cargo run -p ktg-examples --bin reviewer_selection
//! ```

use ktg_core::{bb, fixtures, KtgQuery};
use ktg_index::NlrnlIndex;

fn main() {
    let net = fixtures::figure1();
    println!("reviewer network: {}", ktg_graph::stats::summary(net.graph()));
    for v in 0..net.num_vertices() {
        println!("  {}", net.describe_vertex(ktg_common::VertexId::new(v)));
    }

    let query = KtgQuery::new(
        net.query_keywords(["SN", "QP", "DQ", "GQ", "GD"]).expect("figure 1 terms"),
        3,
        1,
        2,
    )
    .expect("valid query");
    let index = NlrnlIndex::build(net.graph());

    for (name, opts) in [
        ("KTG-QKC", bb::BbOptions::qkc()),
        ("KTG-VKC", bb::BbOptions::vkc()),
        ("KTG-VKC-DEG", bb::BbOptions::vkc_deg()),
    ] {
        let out = bb::solve(&net, &query, &index, &opts);
        println!("\n{name}: explored {} nodes", out.stats.nodes);
        for g in &out.groups {
            let names: Vec<String> = g.members().iter().map(|v| format!("u{}", v.0)).collect();
            println!(
                "  {{{}}} covers {}/5 query keywords",
                names.join(", "),
                g.coverage_count()
            );
            // Confirm tenuity: no pair within 1 hop.
            fixtures::assert_k_distance(net.graph(), g.members(), 1);
        }
    }
    println!("\nno returned panel ever contains both u6 and u7 (direct collaborators).");
}

#!/usr/bin/env bash
# Offline CI gate for the ktg workspace.
#
# The build must succeed with no network and no registry cache, and no
# manifest may regain an external (registry) dependency. Run from
# anywhere; operates on the repo root.

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

echo "== offline release build =="
cargo build --release --offline

echo "== offline test suite =="
cargo test -q --offline

echo "== dependency gate =="
# The historical external deps must never reappear in any manifest.
manifests=(Cargo.toml crates/*/Cargo.toml examples/Cargo.toml tests/Cargo.toml)
banned='crossbeam|parking_lot|rand|proptest|criterion'
if grep -En "$banned" "${manifests[@]}"; then
    echo "FAIL: external dependency reference found in a manifest" >&2
    exit 1
fi

# More generally: every dependency must be a path dependency on a sibling
# crate. Flag any `version = "..."` / bare-version dependency entry.
fail=0
for m in "${manifests[@]}"; do
    if python3 - "$m" <<'PY'
import re, sys

path = sys.argv[1]
section = None
bad = []
for lineno, line in enumerate(open(path), 1):
    stripped = line.strip()
    m = re.match(r'\[(.+)\]$', stripped)
    if m:
        section = m.group(1)
        continue
    if not section or 'dependencies' not in section:
        continue
    if not stripped or stripped.startswith('#'):
        continue
    # `name = { path = ... }` or `name.workspace = true` are fine;
    # `name = "1.0"` or `version = "..."` inside a dep table are not.
    if re.match(r'[\w-]+\s*=\s*"', stripped) or 'version' in stripped:
        bad.append((lineno, stripped))
for lineno, text in bad:
    print(f"{path}:{lineno}: registry dependency: {text}")
sys.exit(1 if bad else 0)
PY
    then :; else fail=1; fi
done
if [ "$fail" -ne 0 ]; then
    echo "FAIL: non-path dependency found" >&2
    exit 1
fi

echo "CI gate passed: offline build + tests green, zero external dependencies."

#!/usr/bin/env bash
# Offline CI gate for the ktg workspace.
#
# The build must succeed with no network, no registry cache, and no
# warnings; the in-tree static analysis pass (ktg-lint) must report no
# regressions against tools/lint-baseline.txt; and a release-mode smoke
# query must pass the checked-mode result verifier (KTG_VERIFY=1).
# Run from anywhere; operates on the repo root.

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

export RUSTFLAGS="-D warnings"

echo "== offline release build (deny warnings) =="
cargo build --release --offline

echo "== offline test suite =="
cargo test -q --offline

echo "== parallel differential gate (KTG_THREADS=4, checked mode) =="
KTG_THREADS=4 KTG_VERIFY=1 cargo test -q --offline \
    -p ktg-integration-tests --test parallel_diff

echo "== PLL oracle differential gate (PLL answers == BFS/NLRNL bytes, checked mode) =="
# Runs inside parallel_diff/serve_diff too; the named invocation keeps
# the gate visible and failing loudly on its own if the matrix shrinks.
pll_out="$(KTG_THREADS=4 KTG_VERIFY=1 cargo test -q --offline \
    -p ktg-integration-tests --test parallel_diff \
    parallel_matches_sequential_with_pll_oracle 2>&1)"
echo "$pll_out" | grep -q "1 passed" || {
    echo "FAIL: PLL differential test did not run/pass:" >&2
    echo "$pll_out" >&2
    exit 1
}

echo "== serving differential gate (KTG_THREADS=4, checked mode) =="
KTG_THREADS=4 KTG_VERIFY=1 cargo test -q --offline \
    -p ktg-integration-tests --test serve_diff

echo "== network differential gate (TCP responses == batch bytes, checked mode) =="
KTG_THREADS=4 KTG_VERIFY=1 cargo test -q --offline \
    -p ktg-integration-tests --test net_diff

echo "== bb_scaling smoke (quick mode still writes JSON-lines) =="
bench_out="$(mktemp -d)"
KTG_BENCH_FAST=1 KTG_BENCH_OUT="$bench_out" \
    cargo run -q --release --offline -p ktg-bench --bin bb_scaling
bb_records="$(wc -l < "$bench_out/bb_scaling.jsonl")"
if [ "$bb_records" -lt 8 ]; then
    echo "FAIL: bb_scaling wrote $bb_records JSON-lines records, expected >= 8" >&2
    exit 1
fi

echo "== qps smoke (serving throughput: 14 records, cache-on beats cache-off, cost >= fifo per zipf point) =="
# The binary itself asserts answer determinism across all configurations,
# the cache-on > cache-off throughput win at one thread (plus thread
# scaling when the machine has >= 4 hardware threads), and the
# cost-policy hit-rate >= FIFO's on the Zipf policy mix; the checks below
# re-verify the written records so a silent no-op run cannot pass.
qps_log="$bench_out/qps.run.log"
KTG_BENCH_FAST=1 KTG_BENCH_OUT="$bench_out" \
    cargo run -q --release --offline -p ktg-bench --bin qps 2>"$qps_log" \
    || { cat "$qps_log" >&2; exit 1; }
cat "$qps_log" >&2
qps_records="$(wc -l < "$bench_out/qps.jsonl")"
if [ "$qps_records" -lt 14 ]; then
    echo "FAIL: qps wrote $qps_records JSON-lines records, expected >= 14 (8 cache + 6 policy)" >&2
    exit 1
fi
grep -q '"bench":"policy_cost"' "$bench_out/qps.jsonl" \
    && grep -q '"bench":"policy_fifo"' "$bench_out/qps.jsonl" || {
    echo "FAIL: qps did not write the eviction-policy comparison records" >&2
    exit 1
}
policy_points="$(grep -c "qps: policy ok at zipf" "$qps_log" || true)"
if [ "$policy_points" -lt 3 ]; then
    echo "FAIL: qps reported $policy_points cost >= fifo hit-rate points, expected 3 (zipf sweep)" >&2
    exit 1
fi

on_ns="$(grep '"bench":"cache_on","param":"1"' "$bench_out/qps.jsonl" \
    | sed 's/.*"min_ns":\([0-9]*\).*/\1/' | head -n1)"
off_ns="$(grep '"bench":"cache_off","param":"1"' "$bench_out/qps.jsonl" \
    | sed 's/.*"min_ns":\([0-9]*\).*/\1/' | head -n1)"
if [ -z "$on_ns" ] || [ -z "$off_ns" ] || [ "$on_ns" -gt "$off_ns" ]; then
    echo "FAIL: cache-on (${on_ns:-?} ns) should not be slower than cache-off (${off_ns:-?} ns) at 1 thread" >&2
    exit 1
fi

echo "== net_qps smoke (TCP serving throughput over loopback: >= 13 records) =="
# The binary self-asserts block framing and the cache-on > cache-off win
# at one connection (re-measuring once against loopback jitter, which
# appends fresh records — hence tail -n1 below reads the final word).
# 8 closed-loop + 2 open-arrival + the 5-point paced offered-load sweep.
KTG_BENCH_FAST=1 KTG_BENCH_OUT="$bench_out" \
    cargo run -q --release --offline -p ktg-bench --bin net_qps
net_records="$(wc -l < "$bench_out/net_qps.jsonl")"
if [ "$net_records" -lt 13 ]; then
    echo "FAIL: net_qps wrote $net_records JSON-lines records, expected >= 13" >&2
    exit 1
fi
net_on_ns="$(grep '"bench":"closed_cache_on","param":"1"' "$bench_out/net_qps.jsonl" \
    | sed 's/.*"min_ns":\([0-9]*\).*/\1/' | tail -n1)"
net_off_ns="$(grep '"bench":"closed_cache_off","param":"1"' "$bench_out/net_qps.jsonl" \
    | sed 's/.*"min_ns":\([0-9]*\).*/\1/' | tail -n1)"
if [ -z "$net_on_ns" ] || [ -z "$net_off_ns" ] || [ "$net_on_ns" -gt "$net_off_ns" ]; then
    echo "FAIL: cache-on (${net_on_ns:-?} ns) should not be slower than cache-off (${net_off_ns:-?} ns) at 1 connection" >&2
    exit 1
fi
echo "== scale smoke (substrate bench: >= 6 records, format/bundle invariants self-asserted) =="
# The binary asserts compressed heap bytes < flat, identical BFS sums
# across formats, a clean bundle round-trip, and byte-identical serving
# over flat vs compressed stores; the record-count check below catches a
# silent no-op run.
KTG_BENCH_FAST=1 KTG_BENCH_OUT="$bench_out" \
    cargo run -q --release --offline -p ktg-bench --bin scale
scale_records="$(wc -l < "$bench_out/scale.jsonl")"
if [ "$scale_records" -lt 6 ]; then
    echo "FAIL: scale wrote $scale_records JSON-lines records, expected >= 6" >&2
    exit 1
fi

echo "== bench summarizer (BENCH_<group>.json: latest record per configuration) =="
KTG_BENCH_OUT="$bench_out" cargo run -q --release --offline -p ktg-bench \
    --bin summarize "$bench_out"
grep -q '"cost_over_fifo":' "$bench_out/BENCH_qps.json" || {
    echo "FAIL: BENCH_qps.json lacks the derived cost_over_fifo ratio" >&2
    exit 1
}
grep -q '"build_speedup_4t":' "$bench_out/BENCH_scale.json" || {
    echo "FAIL: BENCH_scale.json lacks the derived build_speedup_4t ratio" >&2
    exit 1
}
grep -q '"net_open_knee_ratio":' "$bench_out/BENCH_net_qps.json" || {
    echo "FAIL: BENCH_net_qps.json lacks the derived net_open_knee_ratio" >&2
    exit 1
}
for g in bb_scaling net_qps; do
    [ -s "$bench_out/BENCH_$g.json" ] || {
        echo "FAIL: summarizer did not fold $g.jsonl into BENCH_$g.json" >&2
        exit 1
    }
done
rm -rf "$bench_out"

echo "== static analysis (ktg-lint L1-L10, fingerprint ratchet vs tools/lint-baseline.txt) =="
# The JSON run is both the gate and the CI artifact: exit code reflects
# the per-violation fingerprint ratchet (any L7-L10 concurrency-invariant
# finding off the baseline fails here), and the report is kept for
# inspection. The lint must also stay fast enough to run on every push.
lint_json="$root/target/ktg-lint.json"
mkdir -p "$root/target"
lint_start_ms="$(date +%s%3N)"
cargo run -q --release --offline -p ktg-lint -- --json > "$lint_json"
lint_elapsed_ms=$(( $(date +%s%3N) - lint_start_ms ))
grep -q '"pass": true' "$lint_json" || {
    echo "FAIL: ktg-lint reported a ratchet regression:" >&2
    cat "$lint_json" >&2
    exit 1
}
scan_ms="$(sed -n 's/.*"elapsed_ms": \([0-9]*\).*/\1/p' "$lint_json" | head -n1)"
if [ -z "$scan_ms" ] || [ "$scan_ms" -ge 2000 ]; then
    echo "FAIL: ktg-lint scan took ${scan_ms:-?} ms, budget is < 2000 ms" >&2
    exit 1
fi
echo "ktg-lint: pass (scan ${scan_ms} ms, wall ${lint_elapsed_ms} ms, artifact $lint_json)"

echo "== checked-mode smoke query (KTG_VERIFY=1, release) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run -q --release --offline -p ktg-cli -- generate \
    --profile dblp --out "$tmp/data" --scale 100 --seed 7
ktg_out="$tmp/query.out"
KTG_VERIFY=1 cargo run -q --release --offline -p ktg-cli -- query \
    --edges "$tmp/data/edges.txt" --keywords "$tmp/data/keywords.txt" \
    --random-terms 4 --p 3 --k 2 --n 3 --oracle bfs | tee "$ktg_out"
grep -q "checked mode: verified" "$ktg_out" || {
    echo "FAIL: KTG smoke query did not run the checked-mode verifier" >&2
    exit 1
}
KTG_VERIFY=1 cargo run -q --release --offline -p ktg-cli -- dktg \
    --edges "$tmp/data/edges.txt" --keywords "$tmp/data/keywords.txt" \
    --random-terms 4 --p 3 --k 2 --n 2 --oracle bfs | tee "$ktg_out"
grep -q "checked mode: verified" "$ktg_out" || {
    echo "FAIL: DKTG smoke query did not run the checked-mode verifier" >&2
    exit 1
}

echo "== fault-injection differential smoke (KTG_FAULTS absorbed byte-identically) =="
# Every registered fault site fires at rate 1.0; the retry-once recovery
# must absorb all of them, so stdout is byte-for-byte the clean run's.
cat > "$tmp/workload.txt" <<'EOF'
ktg terms=t0,t1,t4 p=3 k=2 n=3
dktg terms=t0,t3,t17 p=3 k=2 n=2 gamma=0.5
insert 0 9
ktg terms=t1,t5 p=3 k=1 n=2
ktg terms=t0,t1,t4 p=3 k=2 n=3
EOF
batch_flags=(--workload "$tmp/workload.txt" --edges "$tmp/data/edges.txt"
    --keywords "$tmp/data/keywords.txt" --threads 1)
cargo run -q --release --offline -p ktg-cli -- batch "${batch_flags[@]}" \
    > "$tmp/batch-clean.out"
KTG_FAULTS=all:1.0:7 cargo run -q --release --offline -p ktg-cli -- batch \
    "${batch_flags[@]}" > "$tmp/batch-fault.out"
if ! cmp -s "$tmp/batch-clean.out" "$tmp/batch-fault.out"; then
    echo "FAIL: fault-armed batch output diverged from the clean run:" >&2
    diff "$tmp/batch-clean.out" "$tmp/batch-fault.out" >&2 || true
    exit 1
fi

echo "== server smoke (ktg serve on an ephemeral port, bytes == batch, clean shutdown) =="
# Background server under checked mode; the trap kills it on any failure
# so a broken smoke can never leave an orphan process behind.
server_log="$tmp/serve.log"
KTG_VERIFY=1 cargo run -q --release --offline -p ktg-cli -- serve \
    --edges "$tmp/data/edges.txt" --keywords "$tmp/data/keywords.txt" \
    --bind 127.0.0.1:0 --workers 2 --threads 1 > "$server_log" 2>&1 &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
addr=""
for _ in $(seq 1 150); do
    addr="$(sed -n 's/^serving on \([^ ]*\).*/\1/p' "$server_log" | head -n1)"
    [ -n "$addr" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "FAIL: server exited before binding; log:" >&2
        cat "$server_log" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "FAIL: server never reported its bound address; log:" >&2
    cat "$server_log" >&2
    exit 1
fi
# The same workload the fault smoke replayed through `ktg batch`: the
# client's response text must be byte-identical to the batch output
# minus the header/summary lines the server has no equivalent of.
cargo run -q --release --offline -p ktg-cli -- serve \
    --connect "$addr" --workload "$tmp/workload.txt" --stats \
    > "$tmp/serve-client.out"
grep -v '^batch: \|^served: \|^partial: ' "$tmp/batch-clean.out" > "$tmp/batch-body.out"
grep -v '^stats: ' "$tmp/serve-client.out" > "$tmp/serve-body.out"
if ! cmp -s "$tmp/batch-body.out" "$tmp/serve-body.out"; then
    echo "FAIL: TCP responses diverged from the batch rendering:" >&2
    diff "$tmp/batch-body.out" "$tmp/serve-body.out" >&2 || true
    exit 1
fi
grep -q '"p50_ns":' "$tmp/serve-client.out" || {
    echo "FAIL: /stats response did not carry latency percentiles" >&2
    exit 1
}
cargo run -q --release --offline -p ktg-cli -- serve --connect "$addr" --shutdown \
    > /dev/null
for _ in $(seq 1 150); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "FAIL: server still running after /shutdown (orphan would leak)" >&2
    exit 1
fi
set +e
wait "$server_pid"
server_code=$?
set -e
trap 'rm -rf "$tmp"' EXIT
if [ "$server_code" -ne 0 ]; then
    echo "FAIL: server exited $server_code after /shutdown; log:" >&2
    cat "$server_log" >&2
    exit 1
fi
grep -q "server stopped" "$server_log" || {
    echo "FAIL: server did not log its clean stop line" >&2
    exit 1
}

echo "== crash-recovery smoke (WAL-backed server, kill -9, replay, bytes == batch) =="
# A WAL-backed server is SIGKILLed mid-workload; a restarted process
# must replay the log and serve the rest so that the concatenated
# client bytes equal an uninterrupted `ktg batch` run of the whole
# workload. Response numbering is per-connection (the post-crash
# connection restarts at [1]), so both sides are renumbered with one
# global counter before the compare; `--no-cache` everywhere keeps the
# recovered server's necessarily-cold cache out of the bytes.
renumber() {
    awk '{ if (match($0, /^\[[0-9]+\] /)) { n++; sub(/^\[[0-9]+\] /, "[" n "] ") } print }' "$1"
}
# Polls /health over /dev/tcp until the startup replay finishes —
# workload lines are refused while the state is `recovering`.
await_serving() {
    local host="${1%%:*}" port="${1##*:}" line=""
    for _ in $(seq 1 150); do
        if exec 3<>"/dev/tcp/$host/$port" 2>/dev/null; then
            printf '/health\n' >&3
            read -r -t 2 line <&3 || true
            exec 3>&- 3<&-
            case "$line" in *'"state":"serving"'*) return 0 ;; esac
        fi
        sleep 0.2
    done
    echo "FAIL: server never reached the serving state (last health: $line)" >&2
    return 1
}
# Scrapes the `serving on HOST:PORT` line from a background server log.
scrape_addr() {
    local log="$1" pid="$2" found=""
    for _ in $(seq 1 150); do
        found="$(sed -n 's/^serving on \([^ ]*\).*/\1/p' "$log" | head -n1)"
        [ -n "$found" ] && { echo "$found"; return 0; }
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "FAIL: server exited before binding; log:" >&2
            cat "$log" >&2
            return 1
        fi
        sleep 0.2
    done
    echo "FAIL: server never reported its bound address; log:" >&2
    cat "$log" >&2
    return 1
}
# Edges (1,2) and (0,5) are absent from the seed-7 dblp graph, so both
# pre-crash inserts genuinely mutate state — and `remove 1 2` after the
# restart renders `applied` only if the first insert survived the
# SIGKILL, making the byte compare a durability proof.
cat > "$tmp/crash-workload.txt" <<'EOF'
ktg terms=t0,t1,t4 p=3 k=2 n=3
insert 1 2
dktg terms=t0,t3,t17 p=3 k=2 n=2 gamma=0.5
insert 0 5
ktg terms=t1,t5 p=3 k=1 n=2
remove 1 2
ktg terms=t0,t3 p=3 k=2 n=2
EOF
head -n 4 "$tmp/crash-workload.txt" > "$tmp/crash-first.txt"
tail -n 3 "$tmp/crash-workload.txt" > "$tmp/crash-second.txt"
KTG_VERIFY=1 cargo run -q --release --offline -p ktg-cli -- batch \
    --workload "$tmp/crash-workload.txt" --edges "$tmp/data/edges.txt" \
    --keywords "$tmp/data/keywords.txt" --threads 1 --no-cache \
    > "$tmp/crash-batch.out"
grep -v '^batch: \|^served: \|^partial: ' "$tmp/crash-batch.out" > "$tmp/crash-ref.out"
crash_serve=(--edges "$tmp/data/edges.txt" --keywords "$tmp/data/keywords.txt"
    --wal "$tmp/crash.wal" --bind 127.0.0.1:0 --workers 2 --threads 1 --no-cache)
KTG_VERIFY=1 cargo run -q --release --offline -p ktg-cli -- serve \
    "${crash_serve[@]}" > "$tmp/crash-serve1.log" 2>&1 &
server_pid=$!
trap 'kill -9 "$server_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
addr="$(scrape_addr "$tmp/crash-serve1.log" "$server_pid")"
# `--retry` rides along so the smoke exercises the flag's plumbing even
# on a healthy connection.
cargo run -q --release --offline -p ktg-cli -- serve --connect "$addr" \
    --workload "$tmp/crash-first.txt" --retry 3 --retry-base-ms 20 \
    > "$tmp/crash-client1.out"
# No ceremony: SIGKILL skips every destructor and flush.
kill -9 "$server_pid" 2>/dev/null
set +e
wait "$server_pid"
set -e
KTG_VERIFY=1 cargo run -q --release --offline -p ktg-cli -- serve \
    "${crash_serve[@]}" > "$tmp/crash-serve2.log" 2>&1 &
server_pid=$!
addr="$(scrape_addr "$tmp/crash-serve2.log" "$server_pid")"
grep -q '^wal: recovered 2 updates' "$tmp/crash-serve2.log" || {
    echo "FAIL: restarted server did not report WAL recovery; log:" >&2
    cat "$tmp/crash-serve2.log" >&2
    exit 1
}
await_serving "$addr"
cargo run -q --release --offline -p ktg-cli -- serve --connect "$addr" \
    --workload "$tmp/crash-second.txt" --retry 3 --retry-base-ms 20 \
    > "$tmp/crash-client2.out"
cat "$tmp/crash-client1.out" "$tmp/crash-client2.out" > "$tmp/crash-got-raw.out"
renumber "$tmp/crash-ref.out" > "$tmp/crash-ref-renum.out"
renumber "$tmp/crash-got-raw.out" > "$tmp/crash-got-renum.out"
if ! cmp -s "$tmp/crash-ref-renum.out" "$tmp/crash-got-renum.out"; then
    echo "FAIL: crashed+recovered responses diverged from the batch rendering:" >&2
    diff "$tmp/crash-ref-renum.out" "$tmp/crash-got-renum.out" >&2 || true
    exit 1
fi
# The server outlived the compare; stop it cleanly like the first smoke.
cargo run -q --release --offline -p ktg-cli -- serve --connect "$addr" --shutdown \
    > /dev/null
for _ in $(seq 1 150); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "FAIL: recovered server still running after /shutdown" >&2
    exit 1
fi
trap 'rm -rf "$tmp"' EXIT

echo "== tight-budget degraded smoke (exit 3, flagged status, verifier clean) =="
# A one-node budget forces a best-so-far answer: the binary must exit 3
# (degraded, not an error), say so on stdout, and still pass the
# checked-mode verifier on whatever it returned.
deg_out="$tmp/degraded.out"
set +e
KTG_VERIFY=1 cargo run -q --release --offline -p ktg-cli -- query \
    --edges "$tmp/data/edges.txt" --keywords "$tmp/data/keywords.txt" \
    --terms t0,t1,t4 --p 3 --k 2 --n 3 --oracle bfs --node-budget 1 \
    > "$deg_out"
deg_code=$?
set -e
if [ "$deg_code" -ne 3 ]; then
    echo "FAIL: tight-budget query exited $deg_code, expected 3 (degraded)" >&2
    exit 1
fi
grep -q "status: degraded(node-budget)" "$deg_out" || {
    echo "FAIL: degraded query did not report its completion status" >&2
    exit 1
}
grep -q "checked mode: verified" "$deg_out" || {
    echo "FAIL: degraded answer skipped the checked-mode verifier" >&2
    exit 1
}

echo "== substrate scale smoke (100k-vertex chunked SBM, bundle, compressed == flat == bundle bytes) =="
# The 10M story, CI-gated at 100k: the chunked generator streams a
# block-diagonal SBM (p_out 0 keeps components block-sized, so NLRNL
# construction stays linear in practice), `index --bundle` persists
# graph + keywords + a 4-thread partitioned NLRNL build, and the same
# workload must produce byte-identical output through every loading
# path: flat text, compressed text, bundle, and bundle-converted-to-
# compressed — all under the checked-mode verifier. Query terms come
# from the Zipf tail so candidate pools stay small at this scale.
cargo run -q --release --offline -p ktg-cli -- generate \
    --sbm-n 100000 --sbm-blocks 1000 --sbm-pin 0.12 --sbm-pout 0.0 \
    --out "$tmp/sbm" --seed 11
cargo run -q --release --offline -p ktg-cli -- index \
    --edges "$tmp/sbm/edges.txt" --keywords "$tmp/sbm/keywords.txt" \
    --oracle nlrnl --threads 4 --bundle "$tmp/sbm/net.bundle" \
    | tee "$tmp/index.out"
grep -q "bundled flat graph + keywords + index" "$tmp/index.out" || {
    echo "FAIL: index --bundle did not report the bundle write" >&2
    exit 1
}
cat > "$tmp/scale-workload.txt" <<'WEOF'
ktg terms=t1500,t1622 p=3 k=2 n=2
ktg terms=t1300,t1777,t1451 p=3 k=2 n=2
dktg terms=t1388,t1952 p=3 k=2 n=2 gamma=0.5
ktg terms=t1500,t1501 p=4 k=2 n=2
WEOF
scale_batch=(--workload "$tmp/scale-workload.txt" --threads 1)
text_input=(--edges "$tmp/sbm/edges.txt" --keywords "$tmp/sbm/keywords.txt")
KTG_VERIFY=1 cargo run -q --release --offline -p ktg-cli -- batch \
    "${scale_batch[@]}" "${text_input[@]}" --graph-format flat > "$tmp/scale-flat.out"
KTG_VERIFY=1 cargo run -q --release --offline -p ktg-cli -- batch \
    "${scale_batch[@]}" "${text_input[@]}" --graph-format compressed > "$tmp/scale-comp.out"
KTG_VERIFY=1 cargo run -q --release --offline -p ktg-cli -- batch \
    "${scale_batch[@]}" --bundle "$tmp/sbm/net.bundle" > "$tmp/scale-bundle.out"
KTG_VERIFY=1 cargo run -q --release --offline -p ktg-cli -- batch \
    "${scale_batch[@]}" --bundle "$tmp/sbm/net.bundle" --graph-format compressed \
    > "$tmp/scale-bundle-comp.out"
for variant in comp bundle bundle-comp; do
    if ! cmp -s "$tmp/scale-flat.out" "$tmp/scale-$variant.out"; then
        echo "FAIL: $variant batch output diverged from the flat run at 100k:" >&2
        diff "$tmp/scale-flat.out" "$tmp/scale-$variant.out" >&2 || true
        exit 1
    fi
done

echo "CI gate passed: offline build + tests green, lint clean, checked-mode, fault/degraded and 100k substrate smokes verified."
